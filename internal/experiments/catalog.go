package experiments

import (
	"fmt"

	"gowool/internal/sim"
	"gowool/internal/workloads/cholesky"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/mm"
	"gowool/internal/workloads/ssf"
	"gowool/internal/workloads/stress"
)

// Workload is one row of the paper's workload catalog (Table I): a
// benchmark kernel at specific parameters, repeated Reps times with
// serialization between repetitions. Root builds a fresh simulated
// root task (fresh state per call so runs never share mutable data).
type Workload struct {
	Family string // "cholesky", "mm", "ssf", "stress256", "stress4096"
	Params string // the paper's parameter column
	Reps   int64  // scaled-down repetition count
	Root   func() (*sim.Def, sim.Args)
}

// Name returns "family(params)".
func (wl Workload) Name() string { return fmt.Sprintf("%s(%s)", wl.Family, wl.Params) }

// choleskyWL builds a cholesky workload row.
func choleskyWL(n, nz, reps int64) Workload {
	return Workload{
		Family: "cholesky",
		Params: fmt.Sprintf("%d,%d", n, nz),
		Reps:   reps,
		Root: func() (*sim.Def, sim.Args) {
			return cholesky.NewSim().RepsDef(), sim.Args{A0: reps, A1: n, A2: nz, A3: 42}
		},
	}
}

// mmWL builds an mm workload row.
func mmWL(n, reps int64) Workload {
	return Workload{
		Family: "mm",
		Params: fmt.Sprintf("%d", n),
		Reps:   reps,
		Root: func() (*sim.Def, sim.Args) {
			return mm.NewSimReps(), sim.Args{A0: n, A1: reps}
		},
	}
}

// ssfWL builds an ssf workload row.
func ssfWL(n, reps int64) Workload {
	return Workload{
		Family: "ssf",
		Params: fmt.Sprintf("%d", n),
		Reps:   reps,
		Root: func() (*sim.Def, sim.Args) {
			wk := &ssf.Work{S: ssf.FibString(n)}
			return ssf.NewSimReps(), sim.Args{A0: reps, Ctx: wk}
		},
	}
}

// stressWL builds a stress workload row at the given leaf iterations.
func stressWL(iters, height, reps int64) Workload {
	family := "stress256"
	if iters == 4096 {
		family = "stress4096"
	}
	return Workload{
		Family: family,
		Params: fmt.Sprintf("%d", height),
		Reps:   reps,
		Root: func() (*sim.Def, sim.Args) {
			return stress.NewSimReps(), sim.Args{A0: height, A1: iters, A2: reps}
		},
	}
}

// fibWL builds the fib workload (Figure 1 left).
func fibWL(n int64) Workload {
	return Workload{
		Family: "fib",
		Params: fmt.Sprintf("%d", n),
		Reps:   1,
		Root: func() (*sim.Def, sim.Args) {
			return fibw.NewSim(), sim.Args{A0: n}
		},
	}
}

// Catalog returns the Table I workload ladder at the given scale. The
// paper's inputs are scaled down (fewer repetitions, and for cholesky
// a cap on matrix size) so a full sweep stays in simulator range; the
// scaling is recorded in EXPERIMENTS.md and the Params/Reps columns.
func Catalog(sc Scale) []Workload {
	if sc == Quick {
		return []Workload{
			choleskyWL(250, 1000, 2),
			choleskyWL(500, 2000, 1),
			mmWL(64, 64),
			mmWL(128, 8),
			mmWL(256, 2),
			ssfWL(12, 32),
			ssfWL(13, 16),
			ssfWL(14, 8),
			stressWL(256, 7, 256),
			stressWL(256, 8, 128),
			stressWL(256, 9, 64),
			stressWL(4096, 3, 256),
			stressWL(4096, 4, 128),
			stressWL(4096, 5, 64),
		}
	}
	return []Workload{
		// cholesky: paper runs 250..4k rows; simulating beyond 1k rows
		// exceeds the task budget, so the two largest rows are omitted.
		choleskyWL(250, 1000, 8),
		choleskyWL(500, 2000, 4),
		choleskyWL(1000, 4000, 1),
		// mm: paper reps 16K/2K/256/32, scaled by 16.
		mmWL(64, 1024),
		mmWL(128, 128),
		mmWL(256, 16),
		mmWL(512, 2),
		// ssf: paper reps 16K..1K, scaled by 64.
		ssfWL(12, 256),
		ssfWL(13, 128),
		ssfWL(14, 64),
		ssfWL(15, 32),
		ssfWL(16, 16),
		// stress leaf 256: paper reps 128K..8K, scaled by 64.
		stressWL(256, 7, 2048),
		stressWL(256, 8, 1024),
		stressWL(256, 9, 512),
		stressWL(256, 10, 256),
		stressWL(256, 11, 128),
		// stress leaf 4096: same scaling.
		stressWL(4096, 3, 2048),
		stressWL(4096, 4, 1024),
		stressWL(4096, 5, 512),
		stressWL(4096, 6, 256),
		stressWL(4096, 7, 128),
	}
}
