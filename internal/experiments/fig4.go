package experiments

import (
	"fmt"
	"io"

	"gowool/internal/costmodel"
	"gowool/internal/sim"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/stress"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Paper: "Figure 4",
		Title: "Steal implementations: base / peek / trylock / nolock on stress (leaf 256)",
		Run:   runFig4,
	})
}

// runFig4 reproduces Figure 4: the lock-strategy ladder against the
// lock-free direct task stack, on stress with 512-cycle leaves over
// four region sizes. Moving right (larger regions) the gap closes as
// parallel slack grows and stealing becomes rarer — the paper's
// central observation about the plots.
func runFig4(sc Scale, w io.Writer) error {
	procs := procsFor(sc)
	div := int64(64) // paper reps are 64K..4K; scale down
	if sc == Quick {
		div = 512
	}
	// The paper shifts the region sizes one step from Table I: heights
	// 7..10 with reps 64K..8K.
	cfgs := []struct{ height, reps int64 }{
		{7, 65536 / div},
		{8, 32768 / div},
		{9, 16384 / div},
		{10, 8192 / div},
	}
	strategies := []struct {
		name string
		run  func(p int, root *sim.Def, args sim.Args) sim.Result
	}{
		{"base", lockStratRunner(sim.LockBase)},
		{"peek", lockStratRunner(sim.LockPeek)},
		{"trylock", lockStratRunner(sim.LockTryLock)},
		{"nolock", func(p int, root *sim.Def, args sim.Args) sim.Result {
			return sim.Run(sim.Config{Procs: p, Kind: sim.KindDirectStack,
				Costs: costmodel.Wool(), Seed: 0x5eed + uint64(p)*977, IdleBackoffCap: 256},
				root, args)
		}},
	}

	for _, cfg := range cfgs {
		plot := tabulate.NewPlot(
			fmt.Sprintf("Figure 4 — stress(256, height %d, %d reps)", cfg.height, cfg.reps),
			"procs", "speedup vs 1-proc nolock", floatProcs(procs))
		// As with the paper's stress plots, all strategies are
		// normalized to the single-processor direct-task-stack run, so
		// a slower single-processor baseline cannot flatter a strategy.
		args := sim.Args{A0: cfg.height, A1: 256, A2: cfg.reps}
		t1 := float64(strategies[3].run(1, stress.NewSimReps(), args).Makespan)
		for _, strat := range strategies {
			vals := make([]float64, len(procs))
			for i, p := range procs {
				res := strat.run(p, stress.NewSimReps(), args)
				vals[i] = t1 / float64(res.Makespan)
			}
			plot.Add(strat.name, vals)
		}
		plot.Render(w)
	}
	return nil
}

func lockStratRunner(strat sim.LockStrategy) func(p int, root *sim.Def, args sim.Args) sim.Result {
	return func(p int, root *sim.Def, args sim.Args) sim.Result {
		return sim.Run(sim.Config{Procs: p, Kind: sim.KindLock, LockStrategy: strat,
			Costs: costmodel.LockBase(), Seed: 0x5eed + uint64(p)*977, IdleBackoffCap: 256},
			root, args)
	}
}
