package experiments

import (
	"io"

	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Paper: "Table I",
		Title: "Workload characteristics: parallelism, RepSz, task and load-balancing granularity",
		Run:   runTable1,
	})
}

// runTable1 reproduces Table I: for every workload in the catalog,
// the average parallelism under the abstract (overhead 0) and
// realistic (overhead 2000 cycles) models, the per-repetition
// sequential work (RepSz, kilocycles), the task granularity
// G_T = T_S/N_T (cycles) and the load-balancing granularity
// G_L(p) = T_S/N_M (kilocycles) for p = 2..8 measured from Wool runs,
// exactly as the paper does.
func runTable1(sc Scale, w io.Writer) error {
	t := tabulate.New(
		"Table I — workload characteristics",
		"workload", "reps", "par(0)", "par(2k)", "RepSz[kcyc]", "G_T[cyc]",
		"G_L(2)", "G_L(3)", "G_L(4)", "G_L(5)", "G_L(6)", "G_L(7)", "G_L(8)",
	)
	wool := Systems()[0]
	for _, wl := range Catalog(sc) {
		root, args := wl.Root()
		span := serialWork(root, args)
		work := float64(span.Work)
		par0 := work / float64(span.Span0)
		parO := work / float64(span.SpanO)
		repSz := work / float64(wl.Reps) / 1000
		gt := work / float64(span.Total.Spawns)

		row := []any{wl.Name(), wl.Reps, par0, parO, repSz, gt}
		for p := 2; p <= 8; p++ {
			root, args := wl.Root()
			res := wool.run(p, root, args)
			if res.Total.Steals == 0 {
				row = append(row, "inf")
				continue
			}
			row = append(row, work/float64(res.Total.Steals)/1000)
		}
		t.Row(row...)
	}
	t.Note("par(0)/par(2k): T1/T∞ with load-balancing overhead 0 and 2000 cycles")
	t.Note("G_L(p): kilocycles of work per steal in Wool runs at p processors")
	t.Render(w)
	return nil
}
