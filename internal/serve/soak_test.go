package serve

// TestServeSoak is the sustained-load self-healing harness (`make
// serve-soak` runs it for 10s; plain `go test` runs a 2s smoke). A
// seeded mixed workload — healthy tenants at ~1.5× their lane capacity,
// a panicking tenant, and a slow tenant with doomed deadlines — runs
// against serve-level chaos (failed Resets, failing probes), and the
// run asserts the healing invariants: healthy traffic stays ≥99%
// successful, the failing tenant's breaker opens and half-opens, at
// least one lane is quarantined and replaced, the accounting identity
// holds, and shutdown leaks no goroutines.

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/resilience"
	"gowool/internal/workloads/fibw"
)

var (
	soakDur  = flag.Duration("serve.soak", 2*time.Second, "serve soak duration (make serve-soak raises it)")
	soakSeed = flag.Uint64("serve.soakseed", 0x50a45eed, "serve soak replay seed")
)

// TestServeSoak drives the full self-healing stack under sustained
// mixed load. Failure messages carry the replay line.
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	seed := *soakSeed
	dur := *soakDur
	replay := fmt.Sprintf("replay: go test ./internal/serve/ -run TestServeSoak -serve.soak=%v -serve.soakseed=%#x", dur, seed)
	t.Log(replay)

	baseGoroutines := runtime.NumGoroutine()

	var rates chaos.ServeRates
	rates[chaos.ServeLaneResetFail] = 16384 // 25% of Resets fail → quarantine
	rates[chaos.ServeProbeFail] = 8192      // 12.5% of probes fail → probe retries
	inj := chaos.NewServeInjector(rates, seed)
	s, err := New(Options{
		Workers:   6,
		LaneWidth: 1,
		// Small queues so overload sheds rather than buffering the storm.
		MaxPending: 64,
		Tenants: []Tenant{
			{Name: "good0", Weight: 2},
			{Name: "good1", Weight: 2},
			{Name: "bad", Weight: 1},
			{Name: "slow", Weight: 1},
		},
		Chaos: inj,
		Resilience: resilience.Options{
			Seed: seed,
			Breaker: resilience.BreakerConfig{
				Window: time.Second, Buckets: 4, MinSamples: 8, FailureRate: 0.5,
				// Short cooldown so the breaker half-opens several times
				// inside the soak window.
				Cooldown: 200 * time.Millisecond, HalfOpenProbes: 2,
			},
			Estimator:  resilience.EstimatorConfig{MinSamples: 4},
			Retry:      resilience.RetryConfig{MaxRetries: 1, BaseBackoff: time.Millisecond},
			Quarantine: resilience.QuarantineConfig{FailureStreak: 5, ProbeBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, replay)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var goodOK, goodBad atomic.Int64
	wantFib := fibw.Serial(14)

	// Healthy closed-loop clients: 3 per 2-lane tenant ≈ 1.5× capacity.
	for _, tenant := range []string{"good0", "good1"} {
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tk, err := s.Submit(context.Background(), tenant, Rec(fibw.Job(14, 1)))
					if err != nil {
						// Overload shed: not a failure, back off a beat.
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if v, werr := tk.Wait(); werr != nil || v != wantFib {
						goodBad.Add(1)
					} else {
						goodOK.Add(1)
					}
				}
			}(tenant)
		}
	}

	// The failing tenant: every request panics; retry-safe so the retry
	// budget drains and bounds the amplification.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tk, err := s.SubmitWith(context.Background(), "bad", boomJob("soak-bad"), SubmitOptions{Retryable: true})
			if err != nil {
				// Breaker open (or overload): shed at admission.
				time.Sleep(200 * time.Microsecond)
				continue
			}
			tk.Wait()
		}
	}()

	// The slow tenant alternates: trainable spins (successes teach the
	// estimator), doomed deadlines (shed once trained), and mid-flight
	// cancellations (keep the abort→Reset→chaos→quarantine path hot).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0, 1: // train
				tk, err := s.Submit(context.Background(), "slow", spinJob(1, 2*time.Millisecond))
				if err == nil {
					tk.Wait()
				}
			case 2: // doomed deadline: shed once the estimator trusts "spin"
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
				if tk, err := s.Submit(ctx, "slow", spinJob(1, 2*time.Millisecond)); err == nil {
					tk.Wait()
				}
				cancel()
			default: // explicit mid-flight cancel
				ctx, cancel := context.WithCancel(context.Background())
				tk, err := s.Submit(ctx, "slow", spinJob(2, 2*time.Millisecond))
				if err == nil {
					go func() {
						time.Sleep(300 * time.Microsecond)
						cancel()
					}()
					tk.Wait()
				}
				cancel()
			}
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	st := s.Stats()
	h := s.Health()
	s.Close()

	// Healthy traffic must stay ≥99% successful through the storm.
	ok, bad := goodOK.Load(), goodBad.Load()
	if ok == 0 {
		t.Fatalf("no healthy request completed (%s)", replay)
	}
	if ratio := float64(ok) / float64(ok+bad); ratio < 0.99 {
		t.Errorf("healthy success ratio = %.4f (%d ok, %d bad), want >= 0.99 (%s)", ratio, ok, bad, replay)
	}

	byName := map[string]TenantStats{}
	for _, ts := range st.Tenants {
		byName[ts.Name] = ts
	}
	hByName := map[string]TenantHealth{}
	for _, th := range h.Tenants {
		hByName[th.Name] = th
	}

	// The failing tenant's breaker must have opened and then half-opened.
	bb := hByName["bad"].Breaker
	if bb == nil || bb.Opened < 1 || bb.HalfOpened < 1 {
		t.Errorf("bad tenant breaker = %+v, want opened >= 1 and half-opened >= 1 (%s)", bb, replay)
	}
	if byName["bad"].ShedCircuitOpen < 1 {
		t.Errorf("bad tenant ShedCircuitOpen = %d, want >= 1 (%s)", byName["bad"].ShedCircuitOpen, replay)
	}
	if byName["bad"].Retried < 1 {
		t.Errorf("bad tenant Retried = %d, want >= 1 (%s)", byName["bad"].Retried, replay)
	}
	// The slow tenant's doomed deadlines must have been shed up front.
	if byName["slow"].ShedDeadline < 1 {
		t.Errorf("slow tenant ShedDeadline = %d, want >= 1 (%s)", byName["slow"].ShedDeadline, replay)
	}
	// At least one lane must have been quarantined and replaced.
	if st.Quarantines < 1 || st.Replacements < 1 {
		t.Errorf("quarantines=%d replacements=%d, want >= 1 (%s)", st.Quarantines, st.Replacements, replay)
	}
	// Accounting identity per tenant: every accepted request finished
	// exactly once, every rejection has a cause.
	for name, ts := range byName {
		if ts.Completed+ts.Cancelled+ts.Failed != ts.Submitted {
			t.Errorf("tenant %s: completed+cancelled+failed = %d, submitted = %d (%s)",
				name, ts.Completed+ts.Cancelled+ts.Failed, ts.Submitted, replay)
		}
		if ts.ShedOverload+ts.ShedCircuitOpen+ts.ShedDeadline != ts.Rejected {
			t.Errorf("tenant %s: shed causes sum %d != rejected %d (%s)",
				name, ts.ShedOverload+ts.ShedCircuitOpen+ts.ShedDeadline, ts.Rejected, replay)
		}
	}

	// Zero goroutine leaks at shutdown (allow the runtime a moment to
	// retire worker goroutines).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at start (%s)\n%s",
				runtime.NumGoroutine(), baseGoroutines, replay, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	t.Logf("soak %v: good ok=%d bad=%d | bad tenant: submitted=%d shedCircuit=%d retried=%d breaker=%+v | slow: shedDeadline=%d cancelled=%d | quarantines=%d replacements=%d (%s)",
		dur, ok, bad, byName["bad"].Submitted, byName["bad"].ShedCircuitOpen, byName["bad"].Retried, bb,
		byName["slow"].ShedDeadline, byName["slow"].Cancelled, st.Quarantines, st.Replacements, replay)
}
