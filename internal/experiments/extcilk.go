package experiments

import (
	"fmt"
	"io"

	"gowool/internal/costmodel"
	"gowool/internal/sim"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/stress"
)

func init() {
	register(Experiment{
		ID:    "xcilk",
		Paper: "extension",
		Title: "Validating the Cilk++ model: steal-child approximation vs true steal-parent execution",
		Run:   runXCilk,
	})
}

// runXCilk compares the two Cilk++ models this repository carries:
// the cost-level approximation used throughout the figure sweeps
// (steal-child order, KindLock, Cilk++ costs — see DESIGN.md §2) and
// the true continuation-stealing engine (sim.RunCilkSim), which
// executes the parent-first order a Cilk compiler produces. If the
// approximation is sound, the two produce comparable speedup curves —
// the differences that remain are the execution-order effects
// (steal-parent distributes continuations near the root, steal-child
// distributes children).
func runXCilk(sc Scale, w io.Writer) error {
	procs := procsFor(sc)
	reps := int64(64)
	if sc == Full {
		reps = 512
	}
	cfgs := []struct{ height, iters int64 }{
		{3, 4096}, // Figure 1 right's workload
		{8, 256},  // fine-grained stress
	}
	for _, c := range cfgs {
		plot := tabulate.NewPlot(
			fmt.Sprintf("Extension — Cilk++ models on stress(%d-iter leaves, height %d, %d reps)",
				c.iters, c.height, reps),
			"procs", "relative speedup", floatProcs(procs))

		// Steal-child approximation (the catalog's Cilk++).
		approx := Systems()[1]
		wl := stressWL(c.iters, c.height, reps)
		root, args := wl.Root()
		t1 := float64(approx.run(1, root, args).Makespan)
		vals := make([]float64, len(procs))
		for i, p := range procs {
			root, args := wl.Root()
			vals[i] = t1 / float64(approx.run(p, root, args).Makespan)
		}
		plot.Add("steal-child approx", vals)

		// True steal-parent engine, same cost profile.
		base := sim.Config{Procs: 1, Costs: costmodel.CilkPP(), Seed: 0x51ed}
		_, r1 := stress.RunCilkSimReps(base, c.height, c.iters, reps)
		cp1 := float64(r1.Makespan)
		vals2 := make([]float64, len(procs))
		for i, p := range procs {
			cfg := sim.Config{Procs: p, Costs: costmodel.CilkPP(), Seed: 0x51ed + uint64(p)}
			_, r := stress.RunCilkSimReps(cfg, c.height, c.iters, reps)
			vals2[i] = cp1 / float64(r.Makespan)
		}
		plot.Add("steal-parent (true)", vals2)
		plot.Render(w)
	}
	return nil
}
