package experiments

import (
	"fmt"
	"io"

	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Paper: "Figure 1",
		Title: "Speedup of fib (no cutoff, absolute) and stress(4096,3,reps) (relative)",
		Run:   runFig1,
	})
}

// runFig1 reproduces Figure 1. Left: absolute speedup (against the
// pure sequential work) of no-cutoff fib on the four systems — the
// per-task overheads of the baselines exceed fib's 13-cycle tasks so
// badly that their curves sit near (or below) 1 while Wool climbs.
// Right: relative speedup of stress with 4096-iteration leaves and
// height-3 trees — regions so small that load-balancing overhead can
// make added processors a net loss.
func runFig1(sc Scale, w io.Writer) error {
	procs := procsFor(sc)

	// Left: fib.
	fibN := int64(22)
	if sc == Full {
		fibN = 27
	}
	wl := fibWL(fibN)
	root, args := wl.Root()
	span := serialWork(root, args)
	left := tabulate.NewPlot("Figure 1 (left) — absolute speedup of fib("+wl.Params+"), no cutoff",
		"procs", "absolute speedup", floatProcs(procs))
	for _, sys := range Systems() {
		vals := make([]float64, len(procs))
		for i, p := range procs {
			root, args := wl.Root()
			res := sys.run(p, root, args)
			vals[i] = float64(span.Work) / float64(res.Makespan)
		}
		left.Add(sys.Name, vals)
	}
	left.Render(w)

	// Right: stress(4096, height 3, many repetitions).
	reps := int64(256)
	if sc == Full {
		reps = 2048 // paper: 128K
	}
	swl := stressWL(4096, 3, reps)
	right := tabulate.NewPlot(
		fmt.Sprintf("Figure 1 (right) — relative speedup of stress(4096,3,%d reps)", swl.Reps),
		"procs", "speedup vs own 1-proc", floatProcs(procs))
	for _, sys := range Systems() {
		root, args := swl.Root()
		t1 := float64(sys.run(1, root, args).Makespan)
		vals := make([]float64, len(procs))
		for i, p := range procs {
			root, args := swl.Root()
			res := sys.run(p, root, args)
			vals[i] = t1 / float64(res.Makespan)
		}
		right.Add(sys.Name, vals)
	}
	right.Render(w)
	return nil
}
