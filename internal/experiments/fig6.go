package experiments

import (
	"fmt"
	"io"

	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Paper: "Figure 6",
		Title: "Breakdown of CPU time (TR / LA / NA / ST / LF) for selected workloads",
		Run:   runFig6,
	})
}

// runFig6 reproduces Figure 6: total CPU time across all processors
// split into the paper's categories — startup/shutdown (TR; nil in
// the simulator, noted), application code acquired through
// leapfrogging (LA), other application code (NA), stealing (ST) and
// leapfrogging search (LF) — normalized to the single-processor NA.
// Growing totals mean sublinear speedup, not slowdown; the dominant
// growth sits in ST and application time, as the paper observes.
func runFig6(sc Scale, w io.Writer) error {
	// A selection mirroring the paper's panels: one config per family.
	var sel []Workload
	seen := map[string]bool{}
	for _, wl := range Catalog(sc) {
		if !seen[wl.Family] {
			seen[wl.Family] = true
			sel = append(sel, wl)
		}
	}
	wool := Systems()[0]
	procs := []int{1, 2, 4, 8}
	for _, wl := range sel {
		t := tabulate.New(
			fmt.Sprintf("Figure 6 — CPU time breakdown, %s on Wool (normalized to 1-proc NA)", wl.Name()),
			"procs", "NA", "LA", "ST", "LF", "total",
		)
		var norm float64
		for _, p := range procs {
			root, args := wl.Root()
			res := wool.run(p, root, args)
			st := res.Total
			if p == 1 {
				norm = float64(st.NA)
				if norm == 0 {
					norm = 1
				}
			}
			total := float64(st.NA+st.LA+st.ST+st.LF) / norm
			t.Row(p, float64(st.NA)/norm, float64(st.LA)/norm,
				float64(st.ST)/norm, float64(st.LF)/norm, total)
		}
		t.Note("TR (startup/shutdown) is zero in the simulator; measure it natively with core.Options.Profile")
		t.Render(w)
	}
	return nil
}
