package sched

import (
	"gowool/internal/chaselev"
	"gowool/internal/steal"
)

func init() { register(chaselevSched{}, 1) }

// chaselevSched registers the Chase-Lev deque scheduler (the TBB
// stand-in).
type chaselevSched struct{}

func (chaselevSched) Name() string { return "chaselev" }
func (chaselevSched) Blurb() string {
	return "Chase-Lev deque, TBB-style: free-list task structures, pointer deque, thief/victim sync on the top/bottom indices, steal-anywhere blocked joins"
}
func (chaselevSched) Caps() Caps {
	return Caps{
		Steal:      "CAS on the deque's top index; steal child, oldest first",
		StealChild: true,
		Stats:      true,
		TaskDefs:   true,
		Trace:      true,
		Chaos:      true,
		// The index-synchronized deque supports batch extraction: a
		// thief can CAS-claim a run of top entries (steal-half).
		StealPolicies: steal.Policies(),
		StealAmounts:  steal.Amounts(),
	}
}

func (chaselevSched) NewPool(o Options) Pool {
	return &chaselevPool{p: chaselev.NewPool(chaselev.Options{
		Workers:        o.Workers,
		DequeSize:      o.StackSize,
		StrictOverflow: o.StrictOverflow,
		MaxIdleSleep:   o.MaxIdleSleep,
		Trace:          o.Trace,
		Chaos:          o.Chaos,
		Steal:          o.Steal,
	})}
}

type chaselevPool struct{ p *chaselev.Pool }

func (cp *chaselevPool) Workers() int { return cp.p.Workers() }
func (cp *chaselevPool) Close()       { cp.p.Close() }
func (cp *chaselevPool) Native() any  { return cp.p }
func (cp *chaselevPool) ResetStats()  { cp.p.ResetStats() }

func (cp *chaselevPool) Stats() Stats {
	s := cp.p.Stats()
	return Stats{
		Spawns:        s.Spawns,
		JoinsInlined:  s.JoinsInlined,
		JoinsStolen:   s.JoinsStolen,
		Steals:        s.Steals,
		StealAttempts: s.StealAttempts,
		Backoffs:      s.Backoffs,
		Extra: map[string]int64{
			"wait_steals":      s.WaitSteals,
			"allocs":           s.Allocs,
			"overflow_inlined": s.OverflowInlined,
		},
	}
}

func (cp *chaselevPool) RunRec(j RecJob) int64 {
	d := BuildRec(chaselev.Define1, j)
	return cp.p.Run(func(w *chaselev.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += d.Call(w, j.Root)
		}
		return total
	})
}

func (cp *chaselevPool) RunRange(j RangeJob) int64 {
	d := BuildRange(chaselev.Define2, j)
	return cp.p.Run(func(w *chaselev.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += d.Call(w, 0, j.N)
		}
		return total
	})
}
