// Package workloads_test cross-validates every workload on every
// native scheduler it is ported to: all ports must compute identical
// results to the serial reference, under concurrency, repeatedly.
package workloads_test

import (
	"math"
	"runtime"
	"testing"

	"gowool/internal/chaselev"
	"gowool/internal/core"
	"gowool/internal/locksched"
	"gowool/internal/ompstyle"
	"gowool/internal/workloads/cholesky"
	"gowool/internal/workloads/mm"
	"gowool/internal/workloads/ssf"
	"gowool/internal/workloads/stress"
)

func TestMMAllSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 48
	want := func() []float64 {
		m := mm.New(n)
		mm.Serial(m)
		return m.C
	}()
	check := func(name string, c []float64) {
		for i := range c {
			if math.Abs(c[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: C[%d] = %g, want %g", name, i, c[i], want[i])
			}
		}
	}

	{
		m := mm.New(n)
		p := core.NewPool(core.Options{Workers: 3, PrivateTasks: true})
		mm.RunWool(p, mm.NewWool(), m)
		p.Close()
		check("wool", m.C)
	}
	{
		m := mm.New(n)
		p := chaselev.NewPool(chaselev.Options{Workers: 3})
		mm.RunChaseLev(p, mm.NewChaseLev(), m)
		p.Close()
		check("chaselev", m.C)
	}
	{
		m := mm.New(n)
		p := locksched.NewPool(locksched.Options{Workers: 3, Strategy: locksched.StealPeek})
		mm.RunLockSched(p, mm.NewLockSched(), m)
		p.Close()
		check("locksched", m.C)
	}
	{
		m := mm.New(n)
		p := ompstyle.NewPool(ompstyle.Options{Workers: 3})
		p.Run(func(tc *ompstyle.Context) int64 { mm.OMP(tc, m); return 0 })
		p.Close()
		check("omp", m.C)
	}
}

func TestSSFAllSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	s := ssf.FibString(11)
	want := ssf.Serial(s, nil)

	{
		p := core.NewPool(core.Options{Workers: 3, PrivateTasks: true})
		got := ssf.RunWool(p, ssf.NewWool(), &ssf.Work{S: s})
		p.Close()
		if got != want {
			t.Errorf("wool: %d want %d", got, want)
		}
	}
	{
		p := chaselev.NewPool(chaselev.Options{Workers: 3})
		got := ssf.RunChaseLev(p, ssf.NewChaseLev(), &ssf.Work{S: s})
		p.Close()
		if got != want {
			t.Errorf("chaselev: %d want %d", got, want)
		}
	}
	{
		p := locksched.NewPool(locksched.Options{Workers: 3})
		got := ssf.RunLockSched(p, ssf.NewLockSched(), &ssf.Work{S: s})
		p.Close()
		if got != want {
			t.Errorf("locksched: %d want %d", got, want)
		}
	}
	{
		p := ompstyle.NewPool(ompstyle.Options{Workers: 3})
		got := p.Run(func(tc *ompstyle.Context) int64 { return ssf.OMP(tc, &ssf.Work{S: s}) })
		p.Close()
		if got != want {
			t.Errorf("omp: %d want %d", got, want)
		}
	}
}

func TestStressAllSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const height, iters, reps = 6, 64, 5
	want := stress.SerialReps(height, iters, reps)

	{
		p := core.NewPool(core.Options{Workers: 3, PrivateTasks: true})
		got := stress.RunWool(p, stress.NewWool(), height, iters, reps)
		p.Close()
		if got != want {
			t.Errorf("wool: %d want %d", got, want)
		}
	}
	{
		p := chaselev.NewPool(chaselev.Options{Workers: 3})
		got := stress.RunChaseLev(p, stress.NewChaseLev(), height, iters, reps)
		p.Close()
		if got != want {
			t.Errorf("chaselev: %d want %d", got, want)
		}
	}
	{
		p := locksched.NewPool(locksched.Options{Workers: 3, Strategy: locksched.StealTryLock})
		got := stress.RunLockSched(p, stress.NewLockSched(), height, iters, reps)
		p.Close()
		if got != want {
			t.Errorf("locksched: %d want %d", got, want)
		}
	}
	{
		p := ompstyle.NewPool(ompstyle.Options{Workers: 3})
		got := stress.RunOMP(p, height, iters, reps)
		p.Close()
		if got != want {
			t.Errorf("omp: %d want %d", got, want)
		}
	}
}

func TestCholeskyChaseLevMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	mSerial := cholesky.Generate(96, 350, 1234)
	mSerial.Factor()
	want := mSerial.ToDenseLower()

	for _, workers := range []int{1, 3} {
		mPar := cholesky.Generate(96, 350, 1234)
		p := chaselev.NewPool(chaselev.Options{Workers: workers})
		cholesky.NewChaseLev().Factor(p, mPar)
		p.Close()
		got := mPar.ToDenseLower()
		for i := range want {
			for j := 0; j <= i; j++ {
				if math.Abs(want[i][j]-got[i][j]) > 1e-9 {
					t.Fatalf("workers=%d: L[%d][%d] = %g, want %g", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}
