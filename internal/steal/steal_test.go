package steal

import (
	"reflect"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	d := Config{}.Defaults()
	want := Config{Policy: Random, Retain: 1, Sampling: 1, Neighborhood: 4, Spill: 0.05, Amount: AmountOne}
	if d != want {
		t.Fatalf("Defaults() = %+v, want %+v", d, want)
	}
	if got := (Config{Sampling: 99}).Defaults().Sampling; got != MaxSampling {
		t.Errorf("Sampling capped at %d, got %d", MaxSampling, got)
	}
	if got := (Config{Retain: -3}).Defaults().Retain; got != -3 {
		t.Errorf("negative Retain must survive Defaults, got %d", got)
	}
	if got := (Config{Spill: -1}).Defaults().Spill; got != -1 {
		t.Errorf("negative Spill must survive Defaults, got %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, ok := range []Config{{}, {Policy: Localized, Amount: AmountHalf}, {Policy: Sequential}} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []Config{{Policy: "zigzag"}, {Amount: "all"}, {Spill: 1.5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted, want error", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with a bad policy did not panic")
		}
	}()
	New(Config{Policy: "zigzag"}, 0, 4)
}

func TestWorkerSeed(t *testing.T) {
	// The two seed schedules are pinned: native backends (seed 0) and
	// the simulator (run seed). Changing either silently breaks chaos
	// replay determinism and the bit-for-bit compat tests.
	var phi, off uint64 = 0x9e3779b97f4a7c15, 0x2545f4914f6cdd1d
	if got := WorkerSeed(0, 3); got != 3*phi+off {
		t.Errorf("native WorkerSeed(0,3) = %#x", got)
	}
	if got := WorkerSeed(7, 3); got != 7+3*off+1 {
		t.Errorf("sim WorkerSeed(7,3) = %#x", got)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 {
		t.Fatal("zero-seeded RNG is stuck at the xorshift fixed point")
	}
}

func TestRandomNeverSelfCoversAll(t *testing.T) {
	const n = 7
	for self := 0; self < n; self++ {
		p := New(Config{}, self, n).(*randomPolicy)
		seen := map[int]bool{}
		for i := 0; i < 400; i++ {
			v := p.Choose(nil)
			if v == self {
				t.Fatalf("self=%d: Choose returned self", self)
			}
			if v < 0 || v >= n {
				t.Fatalf("self=%d: victim %d out of range", self, v)
			}
			seen[v] = true
		}
		if len(seen) != n-1 {
			t.Errorf("self=%d: only %d distinct victims in 400 draws", self, len(seen))
		}
	}
}

func TestRandomSingleWorker(t *testing.T) {
	p := New(Config{}, 0, 1)
	if v := p.Choose(nil); v != 0 {
		t.Fatalf("single-worker Choose = %d, want self", v)
	}
}

// TestDistinct migrates core's TestDistinctVictims: candidates are
// pairwise distinct, never self, and k >= n-1 enumerates everyone.
func TestDistinct(t *testing.T) {
	p := New(Config{Sampling: 4}, 2, 8).(*randomPolicy)
	var buf [MaxSampling]int
	for iter := 0; iter < 200; iter++ {
		cnt := p.distinct(4, buf[:])
		if cnt == 0 {
			t.Fatal("no candidates from a 8-worker pool")
		}
		seen := map[int]bool{}
		for i := 0; i < cnt; i++ {
			v := buf[i]
			if v == 2 {
				t.Fatal("distinct returned self")
			}
			if seen[v] {
				t.Fatalf("duplicate candidate %d", v)
			}
			seen[v] = true
		}
	}
	// k covering the pool: deterministic enumeration of everyone else.
	cnt := p.distinct(8, buf[:])
	if cnt != 7 {
		t.Fatalf("enumerating 8-worker pool gave %d candidates, want 7", cnt)
	}
	want := []int{0, 1, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(buf[:cnt], want) {
		t.Fatalf("enumeration = %v, want %v", buf[:cnt], want)
	}
	// Single worker: no candidates.
	solo := New(Config{Sampling: 4}, 0, 1).(*randomPolicy)
	if cnt := solo.distinct(4, buf[:]); cnt != 0 {
		t.Fatalf("single-worker distinct = %d, want 0", cnt)
	}
}

func TestSamplingProbePrefersStealable(t *testing.T) {
	p := New(Config{Sampling: 6}, 0, 8)
	// Only worker 5 looks stealable: the sampling pass must pick it
	// whenever it lands in the candidate set, else fall back to the
	// last candidate (never self, always in range).
	for i := 0; i < 200; i++ {
		v := p.Choose(func(i int) bool { return i == 5 })
		if v == 0 || v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range or self", v)
		}
	}
	hits := 0
	for i := 0; i < 200; i++ {
		if p.Choose(func(i int) bool { return i == 5 }) == 5 {
			hits++
		}
	}
	// With 6 distinct candidates of 7 the stealable worker is sampled
	// almost every attempt; anything below half would mean the probe
	// is being ignored.
	if hits < 100 {
		t.Fatalf("stealable victim picked only %d/200 times", hits)
	}
}

func TestLastVictimRetention(t *testing.T) {
	p := New(Config{Policy: LastVictim, Retain: 2}, 1, 4).(*lastVictimPolicy)
	probeYes := func(int) bool { return true }
	probeNo := func(int) bool { return false }

	if p.Observe(3, true) {
		t.Fatal("first success at a new victim reported as retained")
	}
	if v := p.Choose(probeYes); v != 3 {
		t.Fatalf("retained victim not chosen first: got %d", v)
	}
	if !p.Observe(3, true) {
		t.Fatal("repeat success at the retained victim not reported")
	}
	// Two consecutive probe misses (Retain=2) drop the retention.
	p.Choose(probeNo)
	if p.last != 3 || p.misses != 1 {
		t.Fatalf("after one miss: last=%d misses=%d", p.last, p.misses)
	}
	p.Choose(probeNo)
	if p.last != -1 || p.misses != 0 {
		t.Fatalf("retention not dropped after %d misses: last=%d misses=%d", 2, p.last, p.misses)
	}
	// A success at a different victim moves the slot.
	p.Observe(2, true)
	if p.last != 2 {
		t.Fatalf("retention slot not moved: last=%d", p.last)
	}
}

func TestLastVictimProbeFreeMissAccounting(t *testing.T) {
	// Without a probe (the simulator) failures feed retention through
	// Observe instead of Choose.
	p := New(Config{Policy: LastVictim, Retain: 2}, 1, 4).(*lastVictimPolicy)
	p.Observe(3, true)
	if v := p.Choose(nil); v == 1 {
		t.Fatal("Choose returned self")
	}
	p.Observe(3, false)
	if p.last != 3 || p.misses != 1 {
		t.Fatalf("after one probe-free miss: last=%d misses=%d", p.last, p.misses)
	}
	p.Choose(nil)
	p.Observe(3, false)
	if p.last != -1 {
		t.Fatalf("retention survived %d probe-free misses: last=%d", 2, p.last)
	}
	// Failures at non-retained victims don't count.
	p.Observe(0, true)
	p.Observe(2, false)
	if p.last != 0 || p.misses != 0 {
		t.Fatalf("miss at non-retained victim counted: last=%d misses=%d", p.last, p.misses)
	}
}

func TestLastVictimRetainDisabled(t *testing.T) {
	// Negative Retain degenerates to plain random (the legacy
	// StealRetain<0 contract).
	p := New(Config{Policy: LastVictim, Retain: -1}, 0, 4)
	if _, ok := p.(*randomPolicy); !ok {
		t.Fatalf("Retain<0 built %T, want *randomPolicy", p)
	}
}

func TestSequentialCursor(t *testing.T) {
	p := New(Config{Policy: Sequential}, 1, 4)
	if v := p.Choose(nil); v != 2 {
		t.Fatalf("first victim = %d, want right neighbour 2", v)
	}
	p.Observe(2, true)
	if v := p.Choose(nil); v != 2 {
		t.Fatalf("cursor moved after a success: %d", v)
	}
	p.Observe(2, false)
	if v := p.Choose(nil); v != 3 {
		t.Fatalf("cursor after miss at 2 = %d, want 3", v)
	}
	p.Observe(3, false)
	if v := p.Choose(nil); v != 0 {
		t.Fatalf("cursor after miss at 3 = %d, want 0 (skip self at wrap)", v)
	}
	p.Observe(0, false)
	if v := p.Choose(nil); v != 2 {
		t.Fatalf("cursor after miss at 0 = %d, want 2 (skip self)", v)
	}
}

func TestLocalizedNeighborhood(t *testing.T) {
	const n, h = 16, 4
	p := New(Config{Policy: Localized, Neighborhood: h, Spill: -1}, 5, n)
	for i := 0; i < 1000; i++ {
		v := p.Choose(nil)
		if v == 5 {
			t.Fatal("localized Choose returned self")
		}
		if d := RingDistance(5, v, n); d > (h+1)/2 {
			t.Fatalf("victim %d at ring distance %d, neighborhood %d", v, d, h)
		}
	}
}

func TestLocalizedSpill(t *testing.T) {
	const n = 16
	p := New(Config{Policy: Localized, Neighborhood: 2, Spill: 0.5}, 0, n)
	far := 0
	for i := 0; i < 2000; i++ {
		if RingDistance(0, p.Choose(nil), n) > 1 {
			far++
		}
	}
	// Spill=0.5 over a 16-ring: roughly half the picks escape the
	// ±1 neighborhood (spilled picks mostly land far).
	if far < 400 {
		t.Fatalf("only %d/2000 picks escaped the neighborhood with spill=0.5", far)
	}
	// Full-ring neighborhood degenerates to random.
	q := New(Config{Policy: Localized, Neighborhood: 99}, 0, 4)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[q.Choose(nil)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("degenerate localized covered %d victims, want 3", len(seen))
	}
}

func TestRingDistance(t *testing.T) {
	cases := []struct{ a, b, n, want int }{
		{0, 0, 8, 0}, {0, 1, 8, 1}, {0, 7, 8, 1}, {0, 4, 8, 4}, {6, 1, 8, 3}, {2, 3, 4, 1},
	}
	for _, c := range cases {
		if got := RingDistance(c.a, c.b, c.n); got != c.want {
			t.Errorf("RingDistance(%d,%d,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

// TestFixedSeedVictimSequence pins the exact victim order each policy
// produces for a fixed seed — the whitebox probe-order guard from the
// refactor: if the RNG step order, the pick arithmetic, or the seed
// schedule drifts, these literals change.
func TestFixedSeedVictimSequence(t *testing.T) {
	seq := func(p Policy, k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = p.Choose(nil)
			p.Observe(out[i], false)
		}
		return out
	}
	// Expected sequences are derived from the pinned xorshift64 stream
	// for WorkerSeed(0, self) — the same stream the pre-refactor
	// backends stepped.
	r := NewRNG(WorkerSeed(0, 1))
	wantRandom := make([]int, 8)
	for i := range wantRandom {
		v := int(r.Next() % 7)
		if v >= 1 {
			v++
		}
		wantRandom[i] = v
	}
	if got := seq(New(Config{}, 1, 8), 8); !reflect.DeepEqual(got, wantRandom) {
		t.Errorf("random sequence = %v, want %v", got, wantRandom)
	}
	// LastVictim with no retained slot and no probe must walk the same
	// stream as random.
	if got := seq(New(Config{Policy: LastVictim}, 1, 8), 8); !reflect.DeepEqual(got, wantRandom) {
		t.Errorf("last-victim cold sequence = %v, want %v", got, wantRandom)
	}
	wantSeq := []int{2, 3, 4, 5, 6, 7, 0, 2}
	if got := seq(New(Config{Policy: Sequential}, 1, 8), 8); !reflect.DeepEqual(got, wantSeq) {
		t.Errorf("sequential sequence = %v, want %v", got, wantSeq)
	}
}
