package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Worker is one scheduler worker. Worker 0 is driven by the goroutine
// that calls Pool.Run; the remaining workers are goroutines created by
// NewPool that steal until the pool is closed.
//
// The fields split into three groups:
//   - owner-private (top, rng, counters, span state): plain access only,
//     touched exclusively by the goroutine driving this worker;
//   - thief-visible (bot, publicLimit, morePublic): atomics;
//   - immutable after construction (pool, idx, tasks backing array).
type Worker struct {
	pool *Pool
	idx  int

	// tasks is the direct task stack: descriptors stored inline, strict
	// stack discipline. Fixed capacity (Options.StackSize); overflow is
	// a programming error reported by panic, like native stack overflow.
	tasks []Task

	// top indexes the next free descriptor. Private to the owner: this
	// is the decoupling the paper gets from synchronizing on the task
	// descriptor instead of on the indices.
	top int

	// bot indexes the bottom-most live task, the next steal candidate.
	// No lock protects it; see trySteal and joinSlow for the implicit
	// ownership protocol.
	bot atomic.Int64

	// publicLimit: descriptors with index < publicLimit are public
	// (stealable, joined with an atomic exchange); descriptors at or
	// above it are private (invisible to thieves, joined with plain
	// loads and stores). When private tasks are disabled it is pinned
	// at the stack capacity.
	publicLimit atomic.Int64

	// morePublic is the trip-wire notification flag: a thief that
	// steals close to the public boundary sets it, and the owner
	// publishes more descriptors at its next spawn or join.
	morePublic atomic.Bool

	// inlineRun counts consecutive inlined public joins; a long run is
	// the signal that the public boundary is too high and can be pulled
	// back down (the revocable cut-off of Section III-B).
	inlineRun int

	rng uint64

	// stats holds the owner-path counters (spawns, joins, ...): plain
	// fields written only by the goroutine driving this worker, and
	// ordered before any Stats() read through the joins that drain the
	// work. The thief-path counters live below as atomics, because
	// idle workers keep attempting steals even while the pool is
	// quiescent and those writes have no happens-before edge to a
	// Stats() reader.
	stats Stats

	stealAttempts atomic.Int64
	steals        atomic.Int64
	backoffs      atomic.Int64

	// Profiling state (only used when pool.opts.Profile is set).
	prof     profState
	spanProf *SpanProfiler
}

// Index returns the worker's index within its pool. Thief indices
// appear in STOLEN states and in provenance hooks.
func (w *Worker) Index() int { return w.idx }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// Depth returns the number of live tasks currently in this worker's
// pool (spawned and not yet joined or stolen-and-completed). Owner only.
func (w *Worker) Depth() int { return w.top - int(w.bot.Load()) }

// push readies the next descriptor for a spawn, handling the trip-wire
// flag and pool overflow. It returns the descriptor; the caller fills
// in arguments and publishes.
func (w *Worker) push() *Task {
	if w.morePublic.Load() {
		w.publishMore()
	}
	if w.top == len(w.tasks) {
		panic(fmt.Sprintf("core: task stack overflow on worker %d (capacity %d); raise Options.StackSize or reduce spawn depth", w.idx, len(w.tasks)))
	}
	return &w.tasks[w.top]
}

// spawn publishes the descriptor prepared by push. Public descriptors
// are published with an atomic store of stateTask, which is the single
// release point making fn and the arguments visible to thieves (the
// paper's "the write which makes the task stealable is the last write").
// Private descriptors just set the owner-only priv flag: no atomics at
// all on the spawn side.
func (w *Worker) spawn(t *Task) {
	if int64(w.top) < w.publicLimit.Load() {
		t.priv = false
		t.state.Store(stateTask)
	} else {
		t.priv = true
	}
	w.top++
	w.stats.Spawns++
	if w.spanProf != nil {
		w.spanProf.onSpawn()
	}
}

// joinAcquire pops the top task and tries to claim it for inlining.
// It returns (task, true) when the task can be inlined — the caller
// performs the direct, task-specific call — and (task, false) when the
// slow path already ran the task (or waited out its thief) and the
// result is in the descriptor.
func (w *Worker) joinAcquire() (*Task, bool) {
	t := &w.tasks[w.top-1]
	if t.priv {
		// Private fast path: the descriptor was never visible to
		// thieves, so a plain flag flip claims it. This is the
		// paper's 3-cycle join.
		w.top--
		t.priv = false
		w.stats.JoinsInlinedPrivate++
		if w.spanProf != nil {
			w.spanProf.onInlineJoinStart()
		}
		return t, true
	}
	s := t.state.Swap(stateEmpty)
	if s == stateTask {
		w.top--
		w.stats.JoinsInlinedPublic++
		w.noteInlinedPublic()
		if w.spanProf != nil {
			w.spanProf.onInlineJoinStart()
		}
		return t, true
	}
	// Slow path: leave top unchanged until the join resolves. The
	// thief is still writing into this descriptor (STOLEN→DONE and the
	// result), and work acquired by leapfrogging below spawns at top —
	// decrementing first would let those spawns recycle the descriptor
	// under the thief.
	w.joinSlow(t, s)
	w.top--
	return t, false
}

// noteInlinedPublic implements the public→private direction of the
// revocable cut-off: after a long run of inlined public joins the owner
// is evidently not losing tasks to thieves, so future spawns above the
// current frontier are made private again. Live tasks are never made
// private (they would have to be acquired first); only the boundary for
// future spawns moves, which sidesteps the race the paper warns about.
func (w *Worker) noteInlinedPublic() {
	if !w.pool.opts.PrivateTasks {
		return
	}
	w.inlineRun++
	if w.inlineRun >= w.pool.opts.PrivatizeRun {
		w.inlineRun = 0
		newPL := int64(w.top + w.pool.opts.InitialPublic)
		if newPL < w.publicLimit.Load() {
			w.publicLimit.Store(newPL)
			w.stats.Privatizations++
		}
	}
}

// publishMore answers a trip-wire notification: convert up to
// PublishAmount private descriptors to public and raise the limit.
// Owner only. The atomic store of publicLimit is the release making the
// state stores visible to thieves that load the limit.
func (w *Worker) publishMore() {
	w.morePublic.Store(false)
	w.inlineRun = 0
	pl := w.publicLimit.Load()
	newPL := pl + int64(w.pool.opts.PublishAmount)
	if max := int64(len(w.tasks)); newPL > max {
		newPL = max
	}
	for i := pl; i < newPL && i < int64(w.top); i++ {
		t := &w.tasks[i]
		if t.priv {
			t.priv = false
			t.state.Store(stateTask)
		}
	}
	w.publicLimit.Store(newPL)
	w.stats.Publications++
}

// joinSlow is RTS_join from the paper: the swap in the fast path
// returned something other than TASK, so a thief is involved. s may be:
//
//   - stateEmpty: a thief is in its transient window (between CAS and
//     commit/back-off). Spin until it either restores the task (then
//     claim it with another swap) or commits STOLEN.
//   - STOLEN(i): leapfrog — steal exclusively from worker i until the
//     thief marks the task DONE.
//   - stateDone: the thief finished before we got here.
//
// On return the task's result fields are valid and bot has been pulled
// back down over the joined descriptor (the owner re-acquires implicit
// ownership of bot, per the paper's protocol).
func (w *Worker) joinSlow(t *Task, s uint64) {
	for {
		for s == stateEmpty {
			// Transient thief window; it resolves in a handful of
			// instructions on the thief side, but yield so a
			// descheduled thief cannot livelock us on few cores.
			runtime.Gosched()
			s = t.state.Load()
		}
		if s != stateTask {
			break
		}
		// The thief backed off and restored the task; claim it.
		s = t.state.Swap(stateEmpty)
		if s == stateTask {
			// Deviation from the paper's pseudocode: RTS_join there
			// ends with an unconditional bot--, but a thief that backs
			// off never advanced bot, so decrementing here would push
			// bot below the live region. Only the stolen paths below
			// (where the thief did advance bot) restore it.
			w.stats.JoinsInlinedPublic++
			if w.spanProf != nil {
				w.spanProf.onInlineJoinStart()
			}
			fn := t.fn
			fn(w, t)
			if w.spanProf != nil {
				w.spanProf.onInlineJoinEnd()
			}
			return
		}
		// Another thief snatched it between our load and swap; loop.
	}
	if isStolen(s) {
		thief := stolenThief(s)
		w.stats.JoinsStolen++
		w.leapfrog(t, thief)
	} else if s != stateDone {
		panic(fmt.Sprintf("core: corrupt task state %#x in join on worker %d", s, w.idx))
	} else {
		w.stats.JoinsStolen++
	}
	w.bot.Add(-1)
}

// leapfrog waits for a stolen task to complete, stealing only from the
// thief that took it (Wagner & Calder's leapfrogging, as used by Wool).
// The restriction guarantees that anything we steal here is work we
// would have executed ourselves had the steal not happened, so the
// worker's stack cannot grow beyond its sequential bound and the buried
// join resolves as soon as the joined task is done.
func (w *Worker) leapfrog(t *Task, thief int) {
	if w.pool.opts.BlockedJoinWait == WaitSpin {
		// Ablation: just wait (see Options.BlockedJoinWait).
		var start time.Time
		if w.prof.on {
			start = time.Now()
		}
		for t.state.Load() != stateDone {
			runtime.Gosched()
		}
		if w.prof.on {
			w.prof.lf.Add(int64(time.Since(start)))
		}
		return
	}
	victim := w.pool.workers[thief]
	var tLF, tLA time.Duration
	fails := 0
	for t.state.Load() != stateDone {
		var start time.Time
		if w.prof.on {
			start = time.Now()
		}
		ok := w.trySteal(victim, true)
		if w.prof.on {
			d := time.Since(start)
			if ok {
				tLA += d
			} else {
				tLF += d
			}
		}
		if ok {
			w.stats.LeapSteals++
			fails = 0
		} else {
			fails++
			if fails&0x3f == 0 || runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		}
	}
	if w.prof.on {
		w.prof.lf.Add(int64(tLF))
		w.prof.la.Add(int64(tLA))
	}
}

// trySteal is RTS_steal from the paper. It attempts to steal the task
// at victim.bot and run it to completion on w. leap marks steals made
// from inside a blocked join (leapfrogging) so profiling can attribute
// the acquired application time to the LA category.
//
// Protocol, in order:
//  1. read bot; give up if it is outside the victim's public region or
//     the stack;
//  2. read state; give up unless it is TASK;
//  3. CAS state TASK→EMPTY; losing the race to another thief or the
//     owner means give up;
//  4. re-read bot: if it moved, the CAS hit a recycled descriptor (the
//     ABA the paper describes) — restore the state and back off. The
//     transient EMPTY is harmless: it only makes other thieves abort
//     and a joining owner wait;
//  5. commit: state=STOLEN(self), bot=b+1 (the thief now owns bot),
//     run the wrapper, state=DONE.
func (w *Worker) trySteal(victim *Worker, leap bool) bool {
	if victim == w {
		return false
	}
	w.stealAttempts.Add(1)
	b := victim.bot.Load()
	if b >= victim.publicLimit.Load() || b >= int64(len(victim.tasks)) {
		return false
	}
	t := &victim.tasks[b]
	s1 := t.state.Load()
	if s1 != stateTask {
		return false
	}
	if !t.state.CompareAndSwap(s1, stateEmpty) {
		return false
	}
	if victim.bot.Load() != b {
		// ABA guard: the descriptor was joined and re-spawned while we
		// were between reading bot and the CAS. Restore and back off.
		t.state.Store(s1)
		w.backoffs.Add(1)
		return false
	}
	// Trip wire: stealing at or past the wire means the public region
	// is running dry; ask the owner to publish more.
	if w.pool.opts.PrivateTasks &&
		b >= victim.publicLimit.Load()-int64(w.pool.opts.TripDistance) {
		victim.morePublic.Store(true)
	}
	t.state.Store(stolenState(w.idx))
	victim.bot.Store(b + 1)
	w.steals.Add(1)
	w.runStolen(t, leap)
	t.state.Store(stateDone)
	return true
}

// runStolen executes a stolen task's wrapper on this worker, converting
// a panic in user code into a pool-wide abort so the joining owner is
// not left spinning on a task that will never reach DONE.
func (w *Worker) runStolen(t *Task, leap bool) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
			// DONE is stored by trySteal after we return; recover so
			// it executes and the victim unblocks, then the panic is
			// re-raised on the Run goroutine.
		}
	}()
	var start time.Time
	if w.prof.on {
		start = time.Now()
	}
	fn := t.fn
	fn(w, t)
	if w.prof.on {
		d := time.Since(start)
		if leap {
			w.prof.la.Add(int64(d))
		} else {
			w.prof.na.Add(int64(d))
		}
	}
}

// nextVictim picks a random victim index != w.idx (xorshift64).
func (w *Worker) nextVictim() int {
	if len(w.pool.workers) == 1 {
		return w.idx // degenerate single-worker pool; caller's steal fails
	}
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	n := len(w.pool.workers) - 1
	v := int(x % uint64(n))
	if v >= w.idx {
		v++
	}
	return v
}

// chooseVictim picks a steal target: with StealSampling > 1 it probes
// candidates read-only and returns the first whose bot descriptor
// looks stealable, falling back to the last candidate.
func (w *Worker) chooseVictim() *Worker {
	k := w.pool.opts.StealSampling
	var v *Worker
	for i := 0; i < k; i++ {
		v = w.pool.workers[w.nextVictim()]
		if k == 1 {
			return v
		}
		b := v.bot.Load()
		if b < v.publicLimit.Load() && b < int64(len(v.tasks)) &&
			v.tasks[b].state.Load() == stateTask {
			return v
		}
	}
	return v
}

// idleLoop is the life of workers 1..N-1: steal from random victims
// until the pool shuts down. Failed attempts back off through Gosched
// into short sleeps so an idle pool does not saturate the host (the
// sleep cap is Options.MaxIdleSleep; negative keeps pure spinning+yield,
// matching the paper's dedicated-machine setup).
func (w *Worker) idleLoop() {
	fails := 0
	for !w.pool.shutdown.Load() {
		var start time.Time
		if w.prof.on {
			start = time.Now()
		}
		ok := w.trySteal(w.chooseVictim(), false)
		if w.prof.on && !ok {
			w.prof.st.Add(int64(time.Since(start)))
		}
		if ok {
			fails = 0
			continue
		}
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || w.pool.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			d := time.Duration(fails-1023) * time.Microsecond
			if d > w.pool.opts.MaxIdleSleep {
				d = w.pool.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	w.pool.wg.Done()
}
