package cholesky

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sim"
)

// denseCholesky factors a dense symmetric matrix in place (lower),
// the reference for the quadtree algorithm.
func denseCholesky(a [][]float64) {
	n := len(a)
	for k := 0; k < n; k++ {
		d := math.Sqrt(a[k][k])
		a[k][k] = d
		for i := k + 1; i < n; i++ {
			a[i][k] /= d
		}
		for j := k + 1; j < n; j++ {
			for i := j; i < n; i++ {
				a[i][j] -= a[i][k] * a[j][k]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a[i][j] = 0
		}
	}
}

func maxAbsDiffLower(a, b [][]float64) float64 {
	var m float64
	for i := range a {
		for j := 0; j <= i; j++ {
			if d := math.Abs(a[i][j] - b[i][j]); d > m {
				m = d
			}
		}
	}
	return m
}

func TestSerialFactorMatchesDense(t *testing.T) {
	for _, tc := range []struct{ n, nz int64 }{
		{16, 0}, {16, 30}, {32, 60}, {48, 100}, {64, 200}, {100, 400},
	} {
		m := Generate(tc.n, tc.nz, 12345)
		ref := m.ToDense()
		denseCholesky(ref)
		m.Factor()
		got := m.ToDenseLower()
		if d := maxAbsDiffLower(ref, got); d > 1e-9 {
			t.Errorf("n=%d nz=%d: max |L_quad - L_dense| = %g", tc.n, tc.nz, d)
		}
	}
}

func TestFactorReconstructsA(t *testing.T) {
	m := Generate(80, 300, 999)
	a := m.ToDense()
	m.Factor()
	l := m.ToDenseLower()
	n := int(m.N)
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += l[i][k] * l[j][k]
			}
			if d := math.Abs(s - a[i][j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-9 {
		t.Errorf("max |L·Lᵀ − A| = %g", worst)
	}
}

func TestWoolFactorMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{1, 2, 4} {
		mSerial := Generate(96, 350, 777)
		mSerial.Factor()
		want := mSerial.ToDenseLower()

		mPar := Generate(96, 350, 777)
		p := core.NewPool(core.Options{Workers: workers, PrivateTasks: true})
		NewWool().Factor(p, mPar)
		p.Close()
		got := mPar.ToDenseLower()

		if d := maxAbsDiffLower(want, got); d > 1e-9 {
			t.Errorf("workers=%d: max diff vs serial = %g", workers, d)
		}
	}
}

func TestSimFactorMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		mSerial := Generate(64, 250, 4242)
		mSerial.Factor()
		want := mSerial.ToDenseLower()

		mSim := Generate(64, 250, 4242)
		s := NewSim()
		res := sim.Run(sim.Config{Procs: procs, Kind: sim.KindDirectStack, Costs: costmodel.Wool()},
			s.RootDef(), sim.Args{Ctx: mSim})
		got := mSim.ToDenseLower()
		if d := maxAbsDiffLower(want, got); d > 1e-9 {
			t.Errorf("procs=%d: max diff vs serial = %g", procs, d)
		}
		if res.Makespan == 0 {
			t.Errorf("procs=%d: zero makespan", procs)
		}
	}
}

func TestSimSpeedup(t *testing.T) {
	s := NewSim()
	run := func(procs int) uint64 {
		m := Generate(128, 500, 31337)
		return sim.Run(sim.Config{Procs: procs, Kind: sim.KindDirectStack, Costs: costmodel.Wool()},
			s.RootDef(), sim.Args{Ctx: m}).Makespan
	}
	t1 := run(1)
	t4 := run(4)
	if sp := float64(t1) / float64(t4); sp < 1.3 {
		t.Errorf("4-proc speedup = %.2f, want >= 1.3 (cholesky has limited parallelism at this size)", sp)
	}
}

func TestQuickFactorEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	err := quick.Check(func(nRaw uint8, nzRaw uint8, seed uint16, wRaw uint8) bool {
		n := int64(nRaw%80) + 17
		nz := int64(nzRaw) * 2
		workers := int(wRaw%3) + 1

		mSerial := Generate(n, nz, uint64(seed)+1)
		mSerial.Factor()
		want := mSerial.ToDenseLower()

		mPar := Generate(n, nz, uint64(seed)+1)
		p := core.NewPool(core.Options{Workers: workers})
		NewWool().Factor(p, mPar)
		p.Close()
		got := mPar.ToDenseLower()
		return maxAbsDiffLower(want, got) < 1e-9
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(64, 200, 5)
	b := Generate(64, 200, 5)
	for i := int64(0); i < 64; i++ {
		for j := int64(0); j <= i; j++ {
			if a.Get(i, j) != b.Get(i, j) {
				t.Fatalf("element (%d,%d) differs across same-seed generations", i, j)
			}
		}
	}
	c := Generate(64, 200, 6)
	same := true
	for i := int64(0); i < 64 && same; i++ {
		for j := int64(0); j < i; j++ {
			if a.Get(i, j) != c.Get(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestFillInHappens(t *testing.T) {
	// Sparse enough that many leaf tiles start absent: 512 rows is a
	// 32×32 tile grid (528 lower tiles) with only ~400 nonzeros.
	m := Generate(512, 400, 88)
	before := m.Ar.NodesInUse()
	m.Factor()
	after := m.Ar.NodesInUse()
	if after <= before {
		t.Errorf("no fill-in allocated (before=%d after=%d); sparse update path untested", before, after)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	ar := NewArena(64, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arena exhaustion")
		}
	}()
	for i := 0; i < 10; i++ {
		ar.NewNode()
	}
}

func TestPackUnpack(t *testing.T) {
	cases := [][2]int32{{0, 0}, {1, 2}, {1 << 30, 3}, {123456, 1 << 30}}
	for _, c := range cases {
		a, b := unpack2(pack2(c[0], c[1]))
		if a != c[0] || b != c[1] {
			t.Errorf("pack2 roundtrip (%d,%d) -> (%d,%d)", c[0], c[1], a, b)
		}
	}
	for _, r := range []int32{0, 7, 1 << 30} {
		for _, size := range []int64{16, 1024, 1 << 20} {
			for _, lower := range []bool{false, true} {
				r2, s2, l2 := unpackMeta(packMeta(r, size, lower))
				if r2 != r || s2 != size || l2 != lower {
					t.Errorf("meta roundtrip (%d,%d,%v) -> (%d,%d,%v)", r, size, lower, r2, s2, l2)
				}
			}
		}
	}
}

func BenchmarkSerialFactor250(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := Generate(250, 1000, 42)
		b.StartTimer()
		m.Factor()
		b.StopTimer()
	}
}

func BenchmarkWoolFactor250(b *testing.B) {
	p := core.NewPool(core.Options{Workers: 1, PrivateTasks: true})
	defer p.Close()
	s := NewWool()
	for i := 0; i < b.N; i++ {
		m := Generate(250, 1000, 42)
		b.StartTimer()
		s.Factor(p, m)
		b.StopTimer()
	}
}
