package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/core"
	"gowool/internal/gen/ports"
	"gowool/internal/sched"
	"gowool/internal/workloads/fibw"
)

// registryBenchReport is the machine-readable snapshot written by
// -registryjson and read back by -perfgate. The Gate block makes the
// file self-describing: it names the keys the CI perf gate re-measures
// and the regression tolerance they are held to, so tightening or
// widening the gate is a change to the committed baseline, not to the
// harness.
type registryBenchReport struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	Gate       perfGate           `json:"gate"`
	Notes      map[string]string  `json:"notes"`
}

// perfGate is the committed contract the CI perf gate enforces.
type perfGate struct {
	// Keys are the benchmark keys re-measured and compared against the
	// committed baseline values.
	Keys []string `json:"keys"`
	// Tolerance is the allowed relative regression per key (0.05 =
	// fail when a key is more than 5% slower than the baseline).
	// WOOL_PERFGATE_TOLERANCE overrides it for noisy runners.
	Tolerance float64 `json:"tolerance"`
	// Ceilings are absolute bounds in the key's own unit, enforced on
	// the freshly measured value regardless of the baseline — the
	// repo's acceptance criteria, machine-independent only in so far
	// as the bound was chosen with headroom.
	Ceilings map[string]float64 `json:"ceilings,omitempty"`
	// MaxGeneratedOverGeneric bounds the machine-independent ratio
	// spawn_join_generated_private_ns / spawn_join_generic_private_ns:
	// the monomorphic path must never fall behind the generic path it
	// specializes (1.10 leaves room for timer noise).
	MaxGeneratedOverGeneric float64 `json:"max_generated_over_generic"`
}

const (
	// ladderDepth places the measured spawn/join pair past the public
	// prefix (InitialPublic descriptors) on private-task pools, so the
	// private keys measure the true plain-stores path rather than the
	// public-slot path that depth 0 lands on.
	ladderDepth = 4
	// batchWindow is the SpawnNoopN/JoinNoopN window size for the
	// batch key; the per-pair cost divides the window's bookkeeping
	// across its tasks.
	batchWindow = 16
)

// ladder runs one spawn/join micro benchmark on a single-worker pool:
// pair is invoked b.N times at ladderDepth (private pools) or depth 0
// (public pools), and the result is ns per pair. Returns the best of
// three runs — the scheduler has no slow warm-up, so min is the
// noise-robust estimator.
func ladder(private bool, pairs int, pair func(w *core.Worker)) float64 {
	p := core.NewPool(core.Options{Workers: 1, PrivateTasks: private})
	defer p.Close()
	depth := 0
	if private {
		depth = ladderDepth
	}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			p.Run(func(w *core.Worker) int64 {
				for i := 0; i < depth; i++ {
					ports.SpawnNoop(w, 0)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pair(w)
				}
				b.StopTimer()
				for i := 0; i < depth; i++ {
					ports.JoinNoop(w)
				}
				return 0
			})
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N) / float64(pairs)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// genericNoop is the generic-path rung's task definition.
var genericNoop = core.Define1("noop", func(w *core.Worker, x int64) int64 { return x })

func measureLadderKey(key string) (float64, bool) {
	switch key {
	case "spawn_join_generic_private_ns":
		return ladder(true, 1, func(w *core.Worker) {
			genericNoop.Spawn(w, 1)
			genericNoop.Join(w)
		}), true
	case "spawn_join_generated_private_ns":
		return ladder(true, 1, func(w *core.Worker) {
			ports.SpawnNoop(w, 1)
			ports.JoinNoop(w)
		}), true
	case "spawn_join_generic_public_ns":
		return ladder(false, 1, func(w *core.Worker) {
			genericNoop.Spawn(w, 1)
			genericNoop.Join(w)
		}), true
	case "spawn_join_generated_public_ns":
		return ladder(false, 1, func(w *core.Worker) {
			ports.SpawnNoop(w, 1)
			ports.JoinNoop(w)
		}), true
	case "spawn_join_generated_batch_ns":
		return ladder(true, batchWindow, func(w *core.Worker) {
			ports.SpawnNoopN(w, 0, batchWindow)
			ports.JoinNoopN(w, batchWindow)
		}), true
	}
	return 0, false
}

// stealLatencyUs measures publication-to-execution latency on a
// two-worker pool: the owner publishes one task, then yields until the
// thief's execution of its body stamps a timestamp. The number
// includes wake-from-idle cost — it is the latency a real victim's
// first stolen task pays. Rounds that hit the deadline (a pathologically
// descheduled thief) are dropped; ok is false if every round did.
func stealLatencyUs() (float64, bool) {
	p := core.NewPool(core.Options{Workers: 2, MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()
	var stamp atomic.Int64
	probe := core.Define1("stealprobe", func(w *core.Worker, x int64) int64 {
		stamp.Store(time.Now().UnixNano())
		return 0
	})
	const rounds = 50
	var total int64
	var n int
	p.Run(func(w *core.Worker) int64 {
		for round := 0; round < rounds+1; round++ {
			stamp.Store(0)
			t0 := time.Now().UnixNano()
			probe.Spawn(w, 0)
			deadline := t0 + (2 * time.Second).Nanoseconds()
			for stamp.Load() == 0 && time.Now().UnixNano() < deadline {
				runtime.Gosched()
			}
			if ts := stamp.Load(); ts != 0 && round > 0 { // round 0 warms the pool
				total += ts - t0
				n++
			}
			probe.Join(w)
		}
		return 0
	})
	if n == 0 {
		return 0, false
	}
	return float64(total) / float64(n) / float64(time.Microsecond), true
}

// fibBackendMs times fib(28) once-per-run on a registered backend and
// returns the best wall time in ms over reps, checking the result
// against the serial reference.
func fibBackendMs(s sched.Scheduler, reps int) (float64, error) {
	pool := s.NewPool(sched.Options{Workers: 4, PrivateTasks: true})
	defer pool.Close()
	job := fibw.Job(28, 1)
	want := fibw.Serial(28)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		got := pool.RunRec(job)
		d := time.Since(t0)
		if got != want {
			return 0, fmt.Errorf("%s: fib(28) = %d, want %d", s.Name(), got, want)
		}
		if d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond), nil
}

// gateKeys is the set the perf gate re-measures: the single-worker
// spawn/join ladder — tight, repeatable numbers. The wall-clock fib
// and steal-latency keys are recorded for trend reading but not gated;
// on shared runners they swing far beyond any useful tolerance.
var gateKeys = []string{
	"spawn_join_generic_private_ns",
	"spawn_join_generated_private_ns",
	"spawn_join_generic_public_ns",
	"spawn_join_generated_public_ns",
	"spawn_join_generated_batch_ns",
}

// runRegistryBench produces BENCH_registry.json: the generic-vs-
// generated ladder, steal latency, and fib(28) wall time on every
// registered backend.
func runRegistryBench(path string) error {
	gmp := runtime.GOMAXPROCS(0)
	if gmp < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(gmp)
	}
	rep := registryBenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]float64{},
		Gate: perfGate{
			Keys:                    gateKeys,
			Tolerance:               0.05,
			Ceilings:                map[string]float64{"spawn_join_generated_private_ns": 15},
			MaxGeneratedOverGeneric: 1.10,
		},
		Notes: map[string]string{
			"spawn_join":    fmt.Sprintf("ns per spawn+join pair, single worker, best of 3; private keys measured at depth %d (past the InitialPublic prefix), batch key per pair over windows of %d", ladderDepth, batchWindow),
			"steal_latency": "µs from publishing a task to the thief executing it, 2 workers, includes wake-from-idle",
			"fib28":         "best-of-2 wall ms, fib(28) via the registry's RunRec, 4 workers",
			"gate":          "make perfgate re-measures gate.keys and fails on >tolerance regression vs this file; override with WOOL_PERFGATE_TOLERANCE=0.15 on noisy runners or skip with WOOL_PERFGATE_SKIP=1",
		},
	}

	fmt.Println("registry: spawn/join ladder (generic vs generated)")
	for _, key := range gateKeys {
		v, _ := measureLadderKey(key)
		rep.Benchmarks[key] = v
		fmt.Printf("  %-36s %8.2f\n", key, v)
	}

	fmt.Println("registry: steal latency")
	if us, ok := stealLatencyUs(); ok {
		rep.Benchmarks["steal_latency_us"] = us
		fmt.Printf("  %-36s %8.2f\n", "steal_latency_us", us)
	} else {
		fmt.Println("  steal_latency_us: no round completed; omitted")
	}

	fmt.Println("registry: fib(28) per backend")
	for _, s := range sched.All() {
		ms, err := fibBackendMs(s, 2)
		if err != nil {
			return err
		}
		key := "fib28_" + s.Name() + "_ms"
		rep.Benchmarks[key] = ms
		fmt.Printf("  %-36s %8.1f\n", key, ms)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runPerfGate re-measures the baseline's gate keys and fails on
// regression: relative vs the committed value, absolute vs the
// ceilings, and the generated/generic ratio bound.
func runPerfGate(path string) error {
	if os.Getenv("WOOL_PERFGATE_SKIP") == "1" {
		fmt.Println("perfgate: skipped (WOOL_PERFGATE_SKIP=1)")
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perfgate: reading baseline: %w", err)
	}
	var base registryBenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perfgate: parsing baseline %s: %w", path, err)
	}
	tol := base.Gate.Tolerance
	if s := os.Getenv("WOOL_PERFGATE_TOLERANCE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("perfgate: bad WOOL_PERFGATE_TOLERANCE %q: %w", s, err)
		}
		tol = v
	}

	gmp := runtime.GOMAXPROCS(0)
	if gmp < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(gmp)
	}

	measured := map[string]float64{}
	var failures []string
	keys := append([]string(nil), base.Gate.Keys...)
	sort.Strings(keys)
	fmt.Printf("perfgate: baseline %s, tolerance %.0f%%\n", path, tol*100)
	for _, key := range keys {
		now, ok := measureLadderKey(key)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated key has no measurement procedure in this binary", key))
			continue
		}
		measured[key] = now
		was, ok := base.Benchmarks[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated key missing from baseline benchmarks", key))
			continue
		}
		delta := (now - was) / was
		status := "ok"
		if now > was*(1+tol) {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.2f → %.2f ns (%+.1f%%, tolerance %.0f%%)", key, was, now, delta*100, tol*100))
		} else if now < was*(1-tol) {
			status = "improved — consider refreshing the baseline"
		}
		fmt.Printf("  %-36s %8.2f → %8.2f  (%+6.1f%%)  %s\n", key, was, now, delta*100, status)
		if ceil, ok := base.Gate.Ceilings[key]; ok && now > ceil {
			failures = append(failures, fmt.Sprintf("%s: %.2f ns exceeds the absolute ceiling %.2f ns", key, now, ceil))
		}
	}
	if r := base.Gate.MaxGeneratedOverGeneric; r > 0 {
		gen, okG := measured["spawn_join_generated_private_ns"]
		gn, okN := measured["spawn_join_generic_private_ns"]
		if okG && okN && gen > gn*r {
			failures = append(failures, fmt.Sprintf("generated private pair (%.2f ns) is more than %.2fx the generic pair (%.2f ns)", gen, r, gn))
		}
	}
	if len(failures) > 0 {
		fmt.Println("perfgate: FAIL")
		for _, f := range failures {
			fmt.Println("  " + f)
		}
		return fmt.Errorf("perfgate: %d check(s) failed (WOOL_PERFGATE_TOLERANCE / WOOL_PERFGATE_SKIP=1 override for noisy runners)", len(failures))
	}
	fmt.Println("perfgate: ok")
	return nil
}
