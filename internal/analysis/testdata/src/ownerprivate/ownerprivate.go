// Package ownerprivate is the analysistest fixture for the
// ownerprivate pass: woolvet:owner fields are reached only through the
// executing worker (method receiver or a parameter named w), and the
// call graph below woolvet:thief roots never invokes owner-touching
// methods on another worker.
package ownerprivate

type pool struct {
	workers []*worker
}

type worker struct {
	pool *pool
	idx  int

	// woolvet:owner
	top int

	// woolvet:owner
	rng uint64
}

func (w *worker) push() {
	w.top++
}

func (w *worker) depth() int { return w.top }

// helper follows the codebase convention: a parameter named w denotes
// the executing worker.
func helper(w *worker) int {
	return w.top
}

func bad(w *worker, victim *worker) int {
	return victim.top // want `owner-private field top accessed through victim`
}

// woolvet:thief
func trySteal(w *worker, victim *worker) bool {
	if victim.depth() > 0 { // want `depth touches owner-private state but is called on victim`
		return true
	}
	return w.depth() > 0 // self calls are fine even on the steal path
}

//woolvet:allow ownerprivate -- fixture: quiescent aggregate accessor
func stats(p *pool) int {
	total := 0
	for _, w := range p.workers {
		total += w.top
	}
	return total
}

// count touches no owner-private state, so its allow suppresses
// nothing and the stale-suppression audit reports the directive
// itself.
func count(p *pool) int {
	n := 0 /* want `stale suppression: no ownerprivate diagnostic is suppressed here; delete the allow` */ //woolvet:allow ownerprivate -- fixture: deliberately dead
	for range p.workers {
		n++
	}
	return n
}
