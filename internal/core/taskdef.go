package core

// Task definitions generate the task-specific spawn and join routines
// the paper describes in Section III-A: the join of an inlined task
// calls the task function directly (visible to the Go compiler's
// inliner) instead of going through the stored wrapper. Definitions are
// created once (typically in a package var) and are safe for concurrent
// use by any worker.
//
// TaskDef1..TaskDef4 carry one to four int64 arguments. TaskDefC1 and
// TaskDefC2 additionally carry a typed context pointer for tasks that
// operate on shared structures (matrices, strings, ...). The context is
// stored in an interface slot; storing a pointer there does not
// allocate.
//
// A function that wants the generic join (paying the indirect wrapper
// call — the paper's "synchronize on task" row in Table II) uses
// Worker.JoinAny instead of the task-specific Join.

// TaskDef1 defines a task taking one int64 and returning int64.
type TaskDef1 struct {
	fn   func(*Worker, int64) int64
	wrap TaskFunc
	name string
}

// Define1 creates the task-specific routines for fn.
func Define1(name string, fn func(*Worker, int64) int64) *TaskDef1 {
	d := &TaskDef1{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.a0) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDef1) Name() string { return d.name }

// Spawn pushes a task on w's pool, making it available for stealing
// (or, in the private region, deferring that synchronization). When the
// pool is full the spawn degrades to an inline call executed here (the
// serial elision; see Options.StrictOverflow for the panicking mode).
func (d *TaskDef1) Spawn(w *Worker, a0 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, a0))
		return
	}
	t.a0 = a0
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task —
// the ordinary recursive call between SPAWN and JOIN in the Wool idiom.
func (d *TaskDef1) Call(w *Worker, a0 int64) int64 { return d.fn(w, a0) }

// Join joins with the most recently spawned task: inline it if it is
// still in the pool (direct call to the task function), otherwise
// resolve the steal (leapfrogging until the thief completes it).
func (d *TaskDef1) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.a0)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// SpawnN spawns n tasks with arguments base, base+1, ..., base+n-1 in
// one batch — the loop-spawn construct regular range workloads expand
// into. When the whole block lands in the private region the per-spawn
// bookkeeping (trip-wire check, bounds check, stats bump) is paid once
// per batch instead of once per task; otherwise the batch degrades to
// one-at-a-time Spawn calls, which carry the full generic semantics
// (publication, overflow degradation, tracing). Join the batch with
// JoinN(w, n).
func (d *TaskDef1) SpawnN(w *Worker, base int64, n int) {
	for n > 0 {
		b := w.BatchPrepPrivate(n)
		if b == nil {
			d.Spawn(w, base)
			base++
			n--
			continue
		}
		for j := range b {
			b[j].Set1(d.wrap, base+int64(j))
		}
		w.BatchCommitPrivate(len(b))
		base += int64(len(b))
		n -= len(b)
	}
}

// JoinN joins the n most recently spawned tasks (LIFO, like n Join
// calls) and returns the sum of their results.
func (d *TaskDef1) JoinN(w *Worker, n int) int64 {
	var sum int64
	for ; n > 0; n-- {
		sum += d.Join(w)
	}
	return sum
}

// TaskDef2 defines a task taking two int64 arguments.
type TaskDef2 struct {
	fn   func(*Worker, int64, int64) int64
	wrap TaskFunc
	name string
}

// Define2 creates the task-specific routines for fn.
func Define2(name string, fn func(*Worker, int64, int64) int64) *TaskDef2 {
	d := &TaskDef2{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.a0, t.a1) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDef2) Name() string { return d.name }

// Spawn pushes a task on w's pool (inline on overflow, see TaskDef1).
func (d *TaskDef2) Spawn(w *Worker, a0, a1 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, a0, a1))
		return
	}
	t.a0, t.a1 = a0, a1
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task.
func (d *TaskDef2) Call(w *Worker, a0, a1 int64) int64 { return d.fn(w, a0, a1) }

// Join joins with the most recently spawned task.
func (d *TaskDef2) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.a0, t.a1)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// TaskDef3 defines a task taking three int64 arguments.
type TaskDef3 struct {
	fn   func(*Worker, int64, int64, int64) int64
	wrap TaskFunc
	name string
}

// Define3 creates the task-specific routines for fn.
func Define3(name string, fn func(*Worker, int64, int64, int64) int64) *TaskDef3 {
	d := &TaskDef3{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.a0, t.a1, t.a2) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDef3) Name() string { return d.name }

// Spawn pushes a task on w's pool (inline on overflow, see TaskDef1).
func (d *TaskDef3) Spawn(w *Worker, a0, a1, a2 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, a0, a1, a2))
		return
	}
	t.a0, t.a1, t.a2 = a0, a1, a2
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task.
func (d *TaskDef3) Call(w *Worker, a0, a1, a2 int64) int64 { return d.fn(w, a0, a1, a2) }

// Join joins with the most recently spawned task.
func (d *TaskDef3) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.a0, t.a1, t.a2)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// TaskDef4 defines a task taking four int64 arguments.
type TaskDef4 struct {
	fn   func(*Worker, int64, int64, int64, int64) int64
	wrap TaskFunc
	name string
}

// Define4 creates the task-specific routines for fn.
func Define4(name string, fn func(*Worker, int64, int64, int64, int64) int64) *TaskDef4 {
	d := &TaskDef4{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.a0, t.a1, t.a2, t.a3) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDef4) Name() string { return d.name }

// Spawn pushes a task on w's pool (inline on overflow, see TaskDef1).
func (d *TaskDef4) Spawn(w *Worker, a0, a1, a2, a3 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, a0, a1, a2, a3))
		return
	}
	t.a0, t.a1, t.a2, t.a3 = a0, a1, a2, a3
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task.
func (d *TaskDef4) Call(w *Worker, a0, a1, a2, a3 int64) int64 {
	return d.fn(w, a0, a1, a2, a3)
}

// Join joins with the most recently spawned task.
func (d *TaskDef4) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.a0, t.a1, t.a2, t.a3)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// TaskDefC1 defines a task taking a typed context pointer and one
// int64. The context travels in the descriptor's interface slot;
// storing and loading a pointer there does not allocate.
type TaskDefC1[C any] struct {
	fn   func(*Worker, *C, int64) int64
	wrap TaskFunc
	name string
}

// DefineC1 creates the task-specific routines for fn.
func DefineC1[C any](name string, fn func(*Worker, *C, int64) int64) *TaskDefC1[C] {
	d := &TaskDefC1[C]{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.ctx.(*C), t.a0) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDefC1[C]) Name() string { return d.name }

// Spawn pushes a task on w's pool (inline on overflow, see TaskDef1).
func (d *TaskDefC1[C]) Spawn(w *Worker, c *C, a0 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, c, a0))
		return
	}
	t.ctx = c
	t.a0 = a0
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task.
func (d *TaskDefC1[C]) Call(w *Worker, c *C, a0 int64) int64 { return d.fn(w, c, a0) }

// Join joins with the most recently spawned task.
func (d *TaskDefC1[C]) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.ctx.(*C), t.a0)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// SpawnN spawns n tasks sharing context c with arguments base..base+n-1
// in one batch (see TaskDef1.SpawnN). Join the batch with JoinN(w, n).
func (d *TaskDefC1[C]) SpawnN(w *Worker, c *C, base int64, n int) {
	for n > 0 {
		b := w.BatchPrepPrivate(n)
		if b == nil {
			d.Spawn(w, c, base)
			base++
			n--
			continue
		}
		for j := range b {
			b[j].SetC1(d.wrap, c, base+int64(j))
		}
		w.BatchCommitPrivate(len(b))
		base += int64(len(b))
		n -= len(b)
	}
}

// JoinN joins the n most recently spawned tasks (LIFO) and returns the
// sum of their results.
func (d *TaskDefC1[C]) JoinN(w *Worker, n int) int64 {
	var sum int64
	for ; n > 0; n-- {
		sum += d.Join(w)
	}
	return sum
}

// TaskDefC2 defines a task taking a typed context pointer and two
// int64 arguments.
type TaskDefC2[C any] struct {
	fn   func(*Worker, *C, int64, int64) int64
	wrap TaskFunc
	name string
}

// DefineC2 creates the task-specific routines for fn.
func DefineC2[C any](name string, fn func(*Worker, *C, int64, int64) int64) *TaskDefC2[C] {
	d := &TaskDefC2[C]{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.ctx.(*C), t.a0, t.a1) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDefC2[C]) Name() string { return d.name }

// Spawn pushes a task on w's pool (inline on overflow, see TaskDef1).
func (d *TaskDefC2[C]) Spawn(w *Worker, c *C, a0, a1 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, c, a0, a1))
		return
	}
	t.ctx = c
	t.a0, t.a1 = a0, a1
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task.
func (d *TaskDefC2[C]) Call(w *Worker, c *C, a0, a1 int64) int64 { return d.fn(w, c, a0, a1) }

// Join joins with the most recently spawned task.
func (d *TaskDefC2[C]) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.ctx.(*C), t.a0, t.a1)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// TaskDefC3 defines a task taking a typed context pointer and three
// int64 arguments.
type TaskDefC3[C any] struct {
	fn   func(*Worker, *C, int64, int64, int64) int64
	wrap TaskFunc
	name string
}

// DefineC3 creates the task-specific routines for fn.
func DefineC3[C any](name string, fn func(*Worker, *C, int64, int64, int64) int64) *TaskDefC3[C] {
	d := &TaskDefC3[C]{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.ctx.(*C), t.a0, t.a1, t.a2) }
	return d
}

// Name returns the definition's diagnostic name.
func (d *TaskDefC3[C]) Name() string { return d.name }

// Spawn pushes a task on w's pool (inline on overflow, see TaskDef1).
func (d *TaskDefC3[C]) Spawn(w *Worker, c *C, a0, a1, a2 int64) {
	t := w.push()
	if t == nil {
		w.noteOverflowInlined(d.fn(w, c, a0, a1, a2))
		return
	}
	t.ctx = c
	t.a0, t.a1, t.a2 = a0, a1, a2
	t.fn = d.wrap
	w.spawn(t)
}

// Call invokes the task function directly, without creating a task.
func (d *TaskDefC3[C]) Call(w *Worker, c *C, a0, a1, a2 int64) int64 {
	return d.fn(w, c, a0, a1, a2)
}

// Join joins with the most recently spawned task.
func (d *TaskDefC3[C]) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		r := d.fn(w, t.ctx.(*C), t.a0, t.a1, t.a2)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
		return r
	}
	return t.res
}

// JoinAny is the generic join: like the task-specific Join but the
// inline path goes through the stored wrapper (an indirect call) and
// the result is read back from the descriptor. It exists to measure
// the value of task-specific joins (Table II, "synchronize on task"
// versus "task specific join") and for call sites that juggle several
// task types at once.
func (w *Worker) JoinAny() int64 {
	t, inline := w.joinAcquire()
	if inline {
		fn := t.fn
		fn(w, t)
		if w.spanProf != nil {
			w.spanProf.onInlineJoinEnd()
		}
	}
	return t.res
}
