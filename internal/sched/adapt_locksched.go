package sched

import (
	"gowool/internal/locksched"
	"gowool/internal/steal"
)

func init() { register(lockSched{}, 2) }

// lockSched registers the lock-based ladder (the paper's "base"
// steal implementation family, Figure 4).
type lockSched struct{}

func (lockSched) Name() string { return "locksched" }
func (lockSched) Blurb() string {
	return "lock-based ladder: per-worker locked task pools, base/peek/trylock steal strategies, leapfrogging joins"
}
func (lockSched) Caps() Caps {
	return Caps{
		Steal:      "per-worker lock around the victim's pool; steal child, oldest first",
		StealChild: true,
		Leapfrog:   true,
		Stats:      true,
		TaskDefs:   true,
		Trace:      true,
		Chaos:      true,
		// The victim's lock covers the whole pool, so a thief can take
		// half the stealable run in one critical section (steal-half).
		StealPolicies: steal.Policies(),
		StealAmounts:  steal.Amounts(),
	}
}

func (lockSched) NewPool(o Options) Pool {
	return &lockPool{p: locksched.NewPool(locksched.Options{
		Workers:        o.Workers,
		StackSize:      o.StackSize,
		StrictOverflow: o.StrictOverflow,
		MaxIdleSleep:   o.MaxIdleSleep,
		Trace:          o.Trace,
		Chaos:          o.Chaos,
		Steal:          o.Steal,
	})}
}

type lockPool struct{ p *locksched.Pool }

func (lp *lockPool) Workers() int { return lp.p.Workers() }
func (lp *lockPool) Close()       { lp.p.Close() }
func (lp *lockPool) Native() any  { return lp.p }
func (lp *lockPool) ResetStats()  { lp.p.ResetStats() }

func (lp *lockPool) Stats() Stats {
	s := lp.p.Stats()
	return Stats{
		Spawns:        s.Spawns,
		JoinsInlined:  s.JoinsInlined,
		JoinsStolen:   s.JoinsStolen,
		Steals:        s.Steals,
		StealAttempts: s.StealAttempts,
		Backoffs:      s.LockFailures,
		Extra: map[string]int64{
			"lock_failures":    s.LockFailures,
			"leap_steals":      s.LeapSteals,
			"overflow_inlined": s.OverflowInlined,
		},
	}
}

func (lp *lockPool) RunRec(j RecJob) int64 {
	d := BuildRec(locksched.Define1, j)
	return lp.p.Run(func(w *locksched.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += d.Call(w, j.Root)
		}
		return total
	})
}

func (lp *lockPool) RunRange(j RangeJob) int64 {
	d := BuildRange(locksched.Define2, j)
	return lp.p.Run(func(w *locksched.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += d.Call(w, 0, j.N)
		}
		return total
	})
}
