package analysis_test

import (
	"testing"

	"gowool/internal/analysis"
	"gowool/internal/analysis/analysistest"
)

// Each analyzer has a fixture package under testdata/src that both
// proves the pass fires (want comments on the violating lines) and
// that it stays quiet on the adjacent correct idioms.

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "atomicfield", analysis.AtomicField)
}

func TestOwnerPrivate(t *testing.T) {
	analysistest.Run(t, "ownerprivate", analysis.OwnerPrivate)
}

func TestLayoutGuard(t *testing.T) {
	analysistest.Run(t, "layoutguard", analysis.LayoutGuard)
}

func TestSpawnJoin(t *testing.T) {
	analysistest.Run(t, "spawnjoin", analysis.SpawnJoin)
}

func TestGenerated(t *testing.T) {
	analysistest.Run(t, "generated", analysis.Generated)
}

func TestPublication(t *testing.T) {
	analysistest.Run(t, "publication", analysis.Publication)
}

// TestPerfBudget is the acceptance proof that the compiler-budget lint
// demonstrably fails when an annotated function de-inlines (pinned,
// tooBig) or lets a value escape (escapes, boxed): those fixtures
// carry want comments quoting the compiler's own reasons.
func TestPerfBudget(t *testing.T) {
	analysistest.Run(t, "perfbudget", analysis.PerfBudget)
}

func TestByName(t *testing.T) {
	as, err := analysis.ByName([]string{"atomicfield", "spawnjoin"})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "atomicfield" || as[1].Name != "spawnjoin" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := analysis.ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
