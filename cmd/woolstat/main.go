// Command woolstat prints workload characteristics in the style of the
// paper's Table I: parallelism under the abstract and realistic cost
// models, per-repetition size, task granularity G_T and load-balancing
// granularity G_L(p) — either for the whole built-in catalog or for a
// single workload at chosen parameters.
//
//	woolstat -scale quick
//	woolstat -workload stress -height 9 -iters 256 -reps 64
//
// With -native the workload instead runs on the real scheduler and the
// live Stats counters are printed — spawns, steals, trip-wire
// publications, parks/wakes from the idle engine and retained-victim
// steal hits:
//
//	woolstat -native -workload fib -n 28 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"gowool/internal/costmodel"
	"gowool/internal/experiments"
	"gowool/internal/sim"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/cholesky"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/mm"
	"gowool/internal/workloads/ssf"
	"gowool/internal/workloads/stress"
)

var (
	scaleFlag = flag.String("scale", "quick", "catalog scale: quick or full")
	workload  = flag.String("workload", "", "single workload: fib | stress | mm | ssf | cholesky (empty = whole catalog)")
	n         = flag.Int64("n", 24, "size parameter")
	nz        = flag.Int64("nz", 1000, "cholesky nonzeros")
	height    = flag.Int64("height", 8, "stress height")
	iters     = flag.Int64("iters", 256, "stress leaf iterations")
	reps      = flag.Int64("reps", 16, "repetitions")
	native    = flag.Bool("native", false, "run on the real scheduler and print live Stats counters (fib and stress only)")
	workers   = flag.Int("workers", 4, "worker count for -native runs")
	schedName = flag.String("sched", "wool", "scheduler for -native runs (any registered name; wool prints the full core counter set, others the normalized one)")
)

func main() {
	flag.Parse()
	if *native {
		if err := runNative(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *workload == "" {
		scale, err := experiments.ParseScale(*scaleFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		e, _ := experiments.ByID("table1")
		if err := e.Run(scale, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var root *sim.Def
	var args sim.Args
	var name string
	switch *workload {
	case "fib":
		root, args = fibw.NewSim(), sim.Args{A0: *n}
		name = fmt.Sprintf("fib(%d)", *n)
	case "stress":
		root, args = stress.NewSimReps(), sim.Args{A0: *height, A1: *iters, A2: *reps}
		name = fmt.Sprintf("stress(h=%d,i=%d)x%d", *height, *iters, *reps)
	case "mm":
		root, args = mm.NewSimReps(), sim.Args{A0: *n, A1: *reps}
		name = fmt.Sprintf("mm(%d)x%d", *n, *reps)
	case "ssf":
		wk := &ssf.Work{S: ssf.FibString(*n)}
		root, args = ssf.NewSimReps(), sim.Args{A0: *reps, Ctx: wk}
		name = fmt.Sprintf("ssf(%d)x%d", *n, *reps)
	case "cholesky":
		root, args = cholesky.NewSim().RepsDef(), sim.Args{A0: *reps, A1: *n, A2: *nz, A3: 42}
		name = fmt.Sprintf("cholesky(%d,%d)x%d", *n, *nz, *reps)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	span := sim.Run(sim.Config{
		Procs: 1, Kind: sim.KindDirectStack,
		Costs:     costmodel.Profile{Name: "zero"},
		TrackSpan: true, SpanOverhead: 2000,
	}, root, args)
	work := float64(span.Work)

	t := tabulate.New("workload characteristics — "+name,
		"metric", "value")
	t.Row("T_S (work)", fmt.Sprintf("%.0f kcycles", work/1000))
	t.Row("RepSz", fmt.Sprintf("%.0f kcycles", work/float64(*reps)/1000))
	t.Row("tasks N_T", span.Total.Spawns)
	t.Row("G_T", fmt.Sprintf("%.0f cycles/task", work/float64(span.Total.Spawns)))
	t.Row("parallelism (O=0)", work/float64(span.Span0))
	t.Row("parallelism (O=2000)", work/float64(span.SpanO))
	for _, p := range []int{2, 4, 8} {
		res := sim.Run(sim.Config{Procs: p, Kind: sim.KindDirectStack,
			Costs: costmodel.Wool(), PrivateTasks: true,
			InitialPublic: 4, TripDistance: 2, PublishAmount: 4,
			Seed: 0x5eed + uint64(p)*977}, root, args)
		gl := "inf"
		if res.Total.Steals > 0 {
			gl = fmt.Sprintf("%.0f kcycles/steal (%d steals)",
				work/float64(res.Total.Steals)/1000, res.Total.Steals)
		}
		t.Row(fmt.Sprintf("G_L(%d)", p), gl)
	}
	t.Render(os.Stdout)
}
