package sim

import (
	"testing"
	"testing/quick"

	"gowool/internal/costmodel"
)

// simFib builds the fib workload against the sim API: ~13 cycles of
// work per spawned task, matching the paper's measured fib task
// granularity (Table I: G_T(fib) ≈ 13 cycles).
func simFib() *Def {
	d := &Def{Name: "fib"}
	d.F = func(w *W, a Args) int64 {
		n := a.A0
		if n < 2 {
			w.Work(4)
			return n
		}
		d.Spawn(w, Args{A0: n - 2})
		x := d.Call(w, Args{A0: n - 1})
		y := w.Join()
		w.Work(13)
		return x + y
	}
	return d
}

// simTree builds a balanced binary tree of the given leaf work — the
// sim analogue of the paper's stress benchmark kernel.
func simTree(leafWork uint64) *Def {
	d := &Def{Name: "tree"}
	d.F = func(w *W, a Args) int64 {
		depth := a.A0
		if depth == 0 {
			w.Work(leafWork)
			return 1
		}
		d.Spawn(w, Args{A0: depth - 1})
		x := d.Call(w, Args{A0: depth - 1})
		y := w.Join()
		return x + y
	}
	return d
}

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

func TestFibValueAllKindsAndProcs(t *testing.T) {
	fib := simFib()
	kinds := []struct {
		kind  Kind
		costs costmodel.Profile
	}{
		{KindDirectStack, costmodel.Wool()},
		{KindDeque, costmodel.TBB()},
		{KindLock, costmodel.LockBase()},
		{KindCentral, costmodel.OpenMP()},
	}
	for _, k := range kinds {
		for _, procs := range []int{1, 2, 4, 8} {
			res := Run(Config{Procs: procs, Kind: k.kind, Costs: k.costs}, fib, Args{A0: 15})
			if want := serialFib(15); res.Value != want {
				t.Errorf("%v procs=%d: got %d want %d", k.kind, procs, res.Value, want)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	fib := simFib()
	cfg := Config{Procs: 8, Kind: KindDirectStack, Costs: costmodel.Wool(), Seed: 42}
	a := Run(cfg, fib, Args{A0: 16})
	b := Run(cfg, fib, Args{A0: 16})
	if a.Makespan != b.Makespan || a.Total.Steals != b.Total.Steals || a.Total.Attempts != b.Total.Attempts {
		t.Errorf("replay diverged: makespan %d vs %d, steals %d vs %d, attempts %d vs %d",
			a.Makespan, b.Makespan, a.Total.Steals, b.Total.Steals, a.Total.Attempts, b.Total.Attempts)
	}
}

func TestSeedChangesInterleaving(t *testing.T) {
	tree := simTree(512)
	r1 := Run(Config{Procs: 8, Kind: KindDirectStack, Costs: costmodel.Wool(), Seed: 1}, tree, Args{A0: 10})
	r2 := Run(Config{Procs: 8, Kind: KindDirectStack, Costs: costmodel.Wool(), Seed: 99}, tree, Args{A0: 10})
	if r1.Value != r2.Value {
		t.Fatalf("values differ: %d vs %d", r1.Value, r2.Value)
	}
	if r1.Total.Attempts == r2.Total.Attempts && r1.Makespan == r2.Makespan {
		t.Log("different seeds produced identical runs (possible but unlikely)")
	}
}

func TestSpeedupScalesForCoarseWork(t *testing.T) {
	tree := simTree(50000) // 50k-cycle leaves: plenty of parallel slack
	base := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool()}, tree, Args{A0: 8})
	for _, procs := range []int{2, 4, 8} {
		res := Run(Config{Procs: procs, Kind: KindDirectStack, Costs: costmodel.Wool()}, tree, Args{A0: 8})
		speedup := float64(base.Makespan) / float64(res.Makespan)
		if speedup < 0.75*float64(procs) {
			t.Errorf("procs=%d: speedup %.2f, want >= %.2f", procs, speedup, 0.75*float64(procs))
		}
		if res.Total.Steals == 0 {
			t.Errorf("procs=%d: no steals", procs)
		}
	}
}

func TestWoolBeatsOthersOnFineGrain(t *testing.T) {
	// Very fine leaves (512 cycles, the paper's stress small config):
	// wool's low overheads must beat the baselines at 8 processors.
	tree := simTree(512)
	run := func(kind Kind, costs costmodel.Profile, private bool) uint64 {
		return Run(Config{Procs: 8, Kind: kind, Costs: costs, PrivateTasks: private}, tree, Args{A0: 12}).Makespan
	}
	wool := run(KindDirectStack, costmodel.Wool(), true)
	cilk := run(KindDeque, costmodel.CilkPP(), false)
	tbb := run(KindDeque, costmodel.TBB(), false)
	omp := run(KindCentral, costmodel.OpenMP(), false)
	if wool >= tbb {
		t.Errorf("wool (%d) should beat tbb (%d) on fine grain", wool, tbb)
	}
	if wool >= cilk {
		t.Errorf("wool (%d) should beat cilk (%d) on fine grain", wool, cilk)
	}
	if wool >= omp {
		t.Errorf("wool (%d) should beat omp (%d) on fine grain", wool, omp)
	}
}

func TestSingleProcOverheadLadder(t *testing.T) {
	// Table II shape: on one processor the makespan ordering must be
	// private < task-specific public < sync-on-task < lock base.
	fib := simFib()
	n := int64(18)
	private := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool(), PrivateTasks: true}, fib, Args{A0: n}).Makespan
	public := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool()}, fib, Args{A0: n}).Makespan
	syncOnTask := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.WoolSyncOnTask()}, fib, Args{A0: n}).Makespan
	lockBase := Run(Config{Procs: 1, Kind: KindLock, Costs: costmodel.LockBase()}, fib, Args{A0: n}).Makespan
	if !(private < public && public < syncOnTask && syncOnTask < lockBase) {
		t.Errorf("ladder out of order: private=%d public=%d syncOnTask=%d lockBase=%d",
			private, public, syncOnTask, lockBase)
	}
}

func TestPrivateTasksMostlyPrivateOnOneProc(t *testing.T) {
	fib := simFib()
	res := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool(), PrivateTasks: true}, fib, Args{A0: 18})
	if res.Total.JoinsPrivate == 0 {
		t.Fatal("no private joins")
	}
	frac := float64(res.Total.JoinsPrivate) / float64(res.Total.Joins())
	if frac < 0.95 {
		t.Errorf("private fraction %.3f, want >= 0.95", frac)
	}
}

func TestTripWirePublishesUnderSteals(t *testing.T) {
	tree := simTree(2000)
	res := Run(Config{Procs: 4, Kind: KindDirectStack, Costs: costmodel.Wool(), PrivateTasks: true}, tree, Args{A0: 10})
	if res.Total.Steals == 0 {
		t.Fatal("no steals")
	}
	if res.Total.Publications == 0 {
		t.Error("steals happened but the trip wire never published")
	}
	if res.Value != 1024 {
		t.Errorf("value = %d, want 1024", res.Value)
	}
}

// simRegions serializes reps repetitions of a depth-deep tree — the
// structure of the paper's stress benchmark (a sequence of small
// parallel regions), which is what exposes the steal-path differences
// in Figure 4.
func simRegions(tree *Def, reps, depth int64) *Def {
	d := &Def{Name: "regions"}
	d.F = func(w *W, a Args) int64 {
		var total int64
		for r := int64(0); r < reps; r++ {
			total += tree.Call(w, Args{A0: depth})
		}
		return total
	}
	return d
}

func TestLockStrategies(t *testing.T) {
	// Fig 4 conditions: many small serialized regions, fine leaves,
	// thieves polling hard.
	regions := simRegions(simTree(512), 100, 4)
	var makespans []uint64
	for _, strat := range []LockStrategy{LockBase, LockPeek, LockTryLock} {
		res := Run(Config{Procs: 8, Kind: KindLock, Costs: costmodel.LockBase(),
			LockStrategy: strat, IdleBackoffCap: 256}, regions, Args{})
		if res.Value != 100*16 {
			t.Errorf("%v: value = %d, want 1600", strat, res.Value)
		}
		makespans = append(makespans, res.Makespan)
	}
	// Figure 4 shape: base is the slowest of the lock ladder on fine
	// grain (it locks victims that have nothing to steal).
	if makespans[0] < makespans[1] || makespans[0] < makespans[2] {
		t.Errorf("base (%d) should be slowest; peek=%d trylock=%d", makespans[0], makespans[1], makespans[2])
	}
}

func TestNoLockBeatsLockLadder(t *testing.T) {
	regions := simRegions(simTree(512), 100, 4)
	nolock := Run(Config{Procs: 8, Kind: KindDirectStack, Costs: costmodel.Wool(), IdleBackoffCap: 256},
		regions, Args{}).Makespan
	peek := Run(Config{Procs: 8, Kind: KindLock, Costs: costmodel.LockBase(), LockStrategy: LockPeek,
		IdleBackoffCap: 256}, regions, Args{}).Makespan
	if nolock >= peek {
		t.Errorf("nolock (%d) should beat peek (%d) on fine grain", nolock, peek)
	}
}

func TestSpanTrackerBalancedTree(t *testing.T) {
	tree := simTree(1000)
	res := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool(),
		TrackSpan: true, SpanOverhead: 2000}, tree, Args{A0: 4})
	if res.Value != 16 {
		t.Fatalf("value = %d", res.Value)
	}
	if res.Work != 16000 {
		t.Errorf("work = %d, want 16000 (16 leaves × 1000)", res.Work)
	}
	if res.Span0 != 1000 {
		t.Errorf("span0 = %d, want 1000 (one leaf on the critical path)", res.Span0)
	}
	// Realistic model with O=2000: the bottom level serializes
	// (savings 1000 < 2000 → span 2000 per subtree); every level above
	// parallelizes at the threshold (savings = span ≥ 2000), adding O
	// each: 2000 → 4000 → 6000 → 8000.
	if res.SpanO != 8000 {
		t.Errorf("spanO = %d, want 8000", res.SpanO)
	}
}

func TestSpanOverheadModelParallelizesCoarse(t *testing.T) {
	tree := simTree(100000)
	res := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool(),
		TrackSpan: true, SpanOverhead: 2000}, tree, Args{A0: 4})
	// min(k,c) = 100k per join >> 2000: parallel, span ≈ leaf + 4×O.
	want := uint64(100000 + 4*2000)
	if res.SpanO != want {
		t.Errorf("spanO = %d, want %d", res.SpanO, want)
	}
	if res.Span0 != 100000 {
		t.Errorf("span0 = %d, want 100000", res.Span0)
	}
}

func TestQuickFibEquivalence(t *testing.T) {
	fib := simFib()
	err := quick.Check(func(nRaw, pRaw, kRaw uint8, seed uint64) bool {
		n := int64(nRaw % 13)
		procs := int(pRaw%8) + 1
		kind := []Kind{KindDirectStack, KindDeque, KindLock, KindCentral}[kRaw%4]
		costs := []costmodel.Profile{costmodel.Wool(), costmodel.TBB(), costmodel.LockBase(), costmodel.OpenMP()}[kRaw%4]
		res := Run(Config{Procs: procs, Kind: kind, Costs: costs, Seed: seed}, fib, Args{A0: n})
		return res.Value == serialFib(n)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSpanInvariants(t *testing.T) {
	err := quick.Check(func(dRaw uint8, leafRaw uint16) bool {
		depth := int64(dRaw%5) + 1
		leaf := uint64(leafRaw%5000) + 100
		tree := simTree(leaf)
		res := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool(),
			TrackSpan: true, SpanOverhead: 2000}, tree, Args{A0: depth})
		return res.Span0 <= res.SpanO && res.SpanO <= res.Work && res.Span0 > 0
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestStatsConservation(t *testing.T) {
	fib := simFib()
	res := Run(Config{Procs: 4, Kind: KindDirectStack, Costs: costmodel.Wool()}, fib, Args{A0: 16})
	if res.Total.Spawns != res.Total.Joins() {
		t.Errorf("spawns (%d) != joins (%d)", res.Total.Spawns, res.Total.Joins())
	}
	if res.Total.JoinsStolen != res.Total.Steals {
		t.Errorf("stolen joins (%d) != steals (%d)", res.Total.JoinsStolen, res.Total.Steals)
	}
}

func TestMoreProcsMoreSteals(t *testing.T) {
	// Paper: "we invariably see the number of steals growing faster
	// than the number of processors."
	tree := simTree(2000)
	prev := int64(0)
	for _, procs := range []int{2, 4, 8} {
		res := Run(Config{Procs: procs, Kind: KindDirectStack, Costs: costmodel.Wool()}, tree, Args{A0: 12})
		if res.Total.Steals <= prev {
			t.Errorf("procs=%d: steals %d did not grow (prev %d)", procs, res.Total.Steals, prev)
		}
		prev = res.Total.Steals
	}
}
