// Package cilkstyle is a steal-parent (continuation-stealing) task
// scheduler in the mould of Cilk++, the third system the paper
// evaluates. Where Wool and TBB make the spawned child stealable,
// here a spawn executes the child immediately and it is the parent's
// continuation that thieves may take (paper Section I-a).
//
// Faithful to the paper's characterization of Cilk++, this scheduler:
//
//   - keeps activation frames on a cactus stack: frames are
//     heap-allocated continuation state, not contiguous Go stack, so a
//     thief can resume a parent from an arbitrary frame;
//   - uses locks for thief/victim synchronization (the paper observes
//     Cilk++ "extensive locking (up to two task descriptors and the
//     victim's worker descriptor)");
//   - pays a wrapper/closure cost on every spawn (Cilk++ "spawning goes
//     through a wrapper function").
//
// In exchange, it inherits steal-parent's strong space guarantee: in
//
//	for p := list; p != nil; p = p.next { spawn foo(p) }
//	sync
//
// the pool holds at most one continuation at a time (the paper's
// example where Cilk uses constant task-pool space while Wool and TBB
// use space linear in the list length) — see TestConstantSpaceSpawnLoop.
//
// Because Go has no compiler support for continuations, task functions
// are written as explicit steps: a Step does some work and returns the
// next Step (or nil to hand control back to the scheduler). Spawn,
// Sync and Return chain steps the way Cilk++'s generated code chains
// its continuations.
package cilkstyle

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/poolerr"
	"gowool/internal/steal"
	"gowool/internal/trace"
)

// Step is one unit of a task function between scheduling points. It
// returns the next step to run, or nil to return control to the
// scheduler (after a steal-induced unwind, a suspend, or completion).
type Step func(w *Worker) Step

// Frame is the activation frame of a task function: the part of its
// state that survives across scheduling points. Embed it in a struct
// carrying the function's variables (the cactus-stack frame).
type Frame struct {
	mu sync.Mutex
	// The child-return protocol state is shared between the owner and
	// every thief running one of the frame's children; all of it is
	// guarded by mu (publication pass: accesses must be dominated by
	// Lock and must not follow Unlock).
	// woolvet:published-by mu
	pending int // outstanding spawned children
	// woolvet:published-by mu
	suspended bool // parked at a Sync waiting for children
	// woolvet:published-by mu
	resume Step // continuation to run when the last child returns
	// parent is written once in NewChild, before the frame is shared.
	parent *Frame
	// woolvet:published-by mu
	done bool // set when the frame's function completed (root tracking)
}

// Stats are the scheduler's event counters.
type Stats struct {
	Spawns        int64
	Steals        int64
	StealAttempts int64
	Suspends      int64 // syncs that had to park the frame
	Resumes       int64 // frames woken by their last returning child
}

func (s *Stats) add(o *Stats) {
	s.Spawns += o.Spawns
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.Suspends += o.Suspends
	s.Resumes += o.Resumes
}

// Worker is one steal-parent worker. Fields are split into
// pad-separated cache-line groups (enforced by the woolvet layoutguard
// pass) so the locked deque the thieves probe never shares a line with
// the owner's scheduling state or the thief-side counters.
type Worker struct {
	// woolvet:cacheline group=immutable
	pool *Pool
	idx  int
	// trc is this worker's event ring, nil when tracing is off. Set
	// once at pool construction and never written again.
	trc *trace.Ring

	// chs is this worker's chaos agent, or nil when fault injection is
	// disabled; set once in NewPool, consulted only by the goroutine
	// driving this worker.
	chs *chaos.Agent

	_ [64]byte // pad: end of the immutable group

	// deque holds ready continuations; the owner pushes and pops at
	// the tail, thieves take from the head. A single lock protects it,
	// matching the lock-based stealing the paper attributes to Cilk++.
	// woolvet:cacheline group=protocol maxspan=64
	mu sync.Mutex
	// woolvet:published-by mu
	deque []Step

	_ [64]byte // pad: end of the protocol group

	// pol is the victim-selection policy (internal/steal), replacing
	// the per-backend xorshift copy. No stealable probe is passed to
	// it: the deque is mutex-guarded, so an unlocked length peek would
	// be a data race — failures feed back through Observe instead.
	// woolvet:cacheline group=owner
	// woolvet:owner
	pol steal.Policy

	// woolvet:owner
	stats Stats

	_ [64]byte // pad: end of the owner-private group

	// woolvet:cacheline group=counters
	// woolvet:atomic
	steals atomic.Int64
	// woolvet:atomic
	stealAttempts atomic.Int64
}

// Index returns the worker index.
func (w *Worker) Index() int { return w.idx }

// DequeLen returns the current number of ready continuations in this
// worker's pool (used by the space-guarantee tests).
func (w *Worker) DequeLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.deque)
}

// Options configures a Pool.
type Options struct {
	// Workers is the worker count; default GOMAXPROCS.
	Workers int
	// DequeSize is the initial capacity of each worker's
	// ready-continuation deque. The deque grows on demand — steal-parent
	// holds at most one continuation per spawn nest, so there is no
	// overflow to degrade — making this a pre-allocation hint only.
	DequeSize int
	// MaxIdleSleep caps idle back-off sleeping; default 200µs.
	MaxIdleSleep time.Duration
	// Trace, when non-nil, records scheduler events into per-worker
	// rings. This backend emits STEAL (victim, 0: a continuation was
	// taken from the victim's locked deque) and PARK (a spinning idle
	// worker entered its sleep phase). The tracer must have at least
	// Workers rings.
	Trace *trace.Tracer
	// Chaos attaches a woolchaos fault injector perturbing the locked
	// steal protocol (PointLockAcquire, PointDequePop,
	// PointParkDecision). nil disables injection at zero cost.
	Chaos *chaos.Injector
	// Steal selects the victim policy (internal/steal); the zero value
	// is the historical uniform-random choice. Steal-parent holds at
	// most one continuation per spawn nest, so Amount "half" has
	// nothing extra to take and is ignored.
	Steal steal.Config
}

func (o Options) defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	o.Steal = o.Steal.Defaults()
	return o
}

// Pool is a steal-parent scheduler instance.
type Pool struct {
	opts     Options
	workers  []*Worker
	shutdown atomic.Bool
	running  atomic.Bool
	rootDone atomic.Bool
	wg       sync.WaitGroup

	// First-panic capture. A panicking step leaves its frame's pending
	// count permanently wrong, so the root can never complete; the
	// panic is recorded here, Run re-raises it, and the pool is
	// poisoned against reuse.
	panicOnce sync.Once
	panicVal  any
	panicked  atomic.Bool
}

// recordPanic captures the first panic value and poisons the pool.
func (p *Pool) recordPanic(r any) {
	p.panicOnce.Do(func() {
		p.panicVal = r
		p.panicked.Store(true)
	})
}

// NewPool creates the pool; worker 0 is driven by Run's caller.
func NewPool(opts Options) *Pool {
	opts = opts.defaults()
	if opts.Trace != nil && opts.Trace.Workers() < opts.Workers {
		panic("cilkstyle: Options.Trace has fewer rings than workers")
	}
	if opts.Chaos != nil && opts.Chaos.Workers() < opts.Workers {
		panic("cilkstyle: Options.Chaos has fewer agents than workers")
	}
	p := &Pool{opts: opts}
	p.workers = make([]*Worker, opts.Workers)
	for i := range p.workers {
		p.workers[i] = &Worker{
			pool: p,
			idx:  i,
			pol:  steal.New(opts.Steal, i, opts.Workers),
		}
		if opts.DequeSize > 0 {
			p.workers[i].deque = make([]Step, 0, opts.DequeSize)
		}
		if opts.Trace != nil {
			p.workers[i].trc = opts.Trace.Ring(i)
		}
		if opts.Chaos != nil {
			p.workers[i].chs = opts.Chaos.Agent(i)
		}
	}
	p.wg.Add(opts.Workers - 1)
	for _, w := range p.workers[1:] {
		go w.idleLoop()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Run drives root (an initial frame and its first step) to completion
// on worker 0 and the thieves, then returns. The root frame must have
// a nil parent; results travel through fields of the user's frame
// struct.
// Abort semantics: a panic in any step poisons the pool. The first
// Run re-raises the original panic value; every later Run fails fast
// with a distinct poisoned message (the abandoned frame tree's pending
// counts are permanently wrong, so the pool cannot be reused). Close
// remains safe on a poisoned pool.
func (p *Pool) Run(root *Frame, first Step) {
	if p.shutdown.Load() {
		panic("cilkstyle: Run on closed Pool")
	}
	if p.panicked.Load() {
		panic(fmt.Sprintf("cilkstyle: pool poisoned by earlier task panic: %v", p.panicVal))
	}
	if !p.running.CompareAndSwap(false, true) {
		panic(poolerr.ConcurrentRun("cilkstyle"))
	}
	defer p.running.Store(false)
	// A panic escaping a step run inline on worker 0 lands here: record
	// it so the idle workers stop and the pool is poisoned, then
	// re-raise the original value to the caller.
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
			panic(r)
		}
	}()
	if root.parent != nil {
		panic("cilkstyle: root frame must have nil parent")
	}
	p.rootDone.Store(false)
	w := p.workers[0]
	w.runSteps(first)
	// The chain returned control: either the root completed, or its
	// continuation was stolen. Work-and-wait until the root is done.
	// A recorded panic also ends the wait: the broken pending counts
	// mean rootDone may never be set.
	fails := 0
	for !p.rootDone.Load() && !p.panicked.Load() {
		if next := w.popBottom(); next != nil {
			w.runSteps(next)
			fails = 0
			continue
		}
		v := w.chooseVictim()
		if w.trySteal(p.workers[v]) {
			w.observeSteal(v, true)
			fails = 0
			continue
		}
		w.observeSteal(v, false)
		fails++
		if fails&0xf == 0 || runtime.GOMAXPROCS(0) == 1 {
			runtime.Gosched()
		}
	}
	if p.panicked.Load() {
		panic(p.panicVal)
	}
}

// Close stops the workers.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	p.wg.Wait()
}

// Stats aggregates worker counters (quiescent pools only).
//
//woolvet:allow ownerprivate -- quiescent-pool accessor by contract
func (p *Pool) Stats() Stats {
	var s Stats
	for _, w := range p.workers {
		ws := w.stats
		ws.Steals = w.steals.Load()
		ws.StealAttempts = w.stealAttempts.Load()
		s.add(&ws)
	}
	return s
}

// ResetStats zeroes the counters.
//
//woolvet:allow ownerprivate -- quiescent-pool mutator by contract
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.stats = Stats{}
		w.steals.Store(0)
		w.stealAttempts.Store(0)
	}
}

// runSteps drives a step chain until it hands control back.
func (w *Worker) runSteps(step Step) {
	for step != nil {
		step = step(w)
	}
}

// Spawn registers child-about-to-run semantics: the parent's
// continuation cont becomes stealable and the child runs immediately
// (steal parent). Call it as `return w.Spawn(&f.Frame, f.step2, child.step0)`.
func (w *Worker) Spawn(parent *Frame, cont Step, child Step) Step {
	parent.mu.Lock()
	parent.pending++
	parent.mu.Unlock()
	w.push(cont)
	w.stats.Spawns++
	return child
}

// Sync waits for all outstanding children of f. If none are pending
// the step chain continues with after; otherwise the frame parks and
// the worker looks for other ready work (usually f's own continuation
// pushed by an earlier Spawn — which cannot still be in the deque at a
// correct sync, so in practice: other frames' continuations).
func (w *Worker) Sync(f *Frame, after Step) Step {
	f.mu.Lock()
	if f.pending == 0 {
		f.mu.Unlock()
		return after
	}
	f.suspended = true
	f.resume = after
	f.mu.Unlock()
	w.stats.Suspends++
	return w.popBottom()
}

// Return marks f's function complete and runs the child-return
// protocol: notify the parent (waking it if this was the last child it
// was syncing on) and pick the next ready continuation — in the fast
// path, the parent's continuation this worker pushed at the spawn.
func (w *Worker) Return(f *Frame) Step {
	f.mu.Lock()
	f.done = true
	f.mu.Unlock()
	p := f.parent
	if p == nil {
		w.pool.rootDone.Store(true)
		return nil
	}
	p.mu.Lock()
	p.pending--
	if p.suspended && p.pending == 0 {
		p.suspended = false
		resume := p.resume
		p.resume = nil
		p.mu.Unlock()
		w.stats.Resumes++
		return resume
	}
	p.mu.Unlock()
	return w.popBottom()
}

// NewChild initializes fr as a child frame of parent and returns fr's
// embedded Frame pointer for convenience.
func NewChild(parent, child *Frame) *Frame {
	child.parent = parent
	return child
}

// push adds a ready continuation at the owner's end.
func (w *Worker) push(s Step) {
	w.mu.Lock()
	w.deque = append(w.deque, s)
	w.mu.Unlock()
}

// popBottom takes the youngest ready continuation, or nil.
func (w *Worker) popBottom() Step {
	if w.chs != nil {
		// Delay/yield only, before the lock: give thieves a wider
		// window to race for the continuation.
		w.chs.Point(chaos.PointDequePop)
	}
	w.mu.Lock()
	n := len(w.deque)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	s := w.deque[n-1]
	w.deque[n-1] = nil
	w.deque = w.deque[:n-1]
	w.mu.Unlock()
	return s
}

// trySteal takes the oldest ready continuation from victim and runs
// its chain to the next scheduling point.
//
// woolvet:thief
func (w *Worker) trySteal(victim *Worker) bool {
	if victim == w {
		return false
	}
	w.stealAttempts.Add(1)
	if w.chs != nil && w.chs.Point(chaos.PointLockAcquire) {
		// Fail-one-attempt is safe before the lock: nothing is claimed.
		return false
	}
	victim.mu.Lock()
	if len(victim.deque) == 0 {
		victim.mu.Unlock()
		return false
	}
	s := victim.deque[0]
	copy(victim.deque, victim.deque[1:])
	victim.deque[len(victim.deque)-1] = nil
	victim.deque = victim.deque[:len(victim.deque)-1]
	victim.mu.Unlock()
	w.steals.Add(1)
	if w.trc != nil {
		w.trc.Record(trace.KindSteal, int64(victim.idx), 0)
	}
	w.runStolen(s)
	return true
}

// runStolen drives a stolen continuation chain, converting a panic
// into pool poisoning instead of killing the thief goroutine (which
// would leave Close hanging on the WaitGroup). The frame tree the
// panicking step abandons has broken pending counts; Run notices the
// poison and re-raises to the caller.
func (w *Worker) runStolen(s Step) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
		}
	}()
	w.runSteps(s)
}

// chooseVictim asks the worker's steal policy for the next target; no
// stealable probe is available (the deque is mutex-guarded), so the
// outcome feeds back through observeSteal instead.
func (w *Worker) chooseVictim() int { return w.pol.Choose(nil) }

// observeSteal reports a steal attempt's outcome to the policy.
func (w *Worker) observeSteal(v int, ok bool) { w.pol.Observe(v, ok) }

// woolvet:thief
func (w *Worker) idleLoop() {
	fails := 0
	// Also exit on poison: after a recorded panic no more useful work
	// exists, and a chain claimed before the poison always runs to its
	// next scheduling point (runStolen recovers), so exiting between
	// attempts never strands a waiting frame.
	for !w.pool.shutdown.Load() && !w.pool.panicked.Load() {
		if next := w.popBottom(); next != nil {
			w.runStolen(next)
			fails = 0
			continue
		}
		v := w.chooseVictim()
		if w.trySteal(w.pool.workers[v]) {
			w.observeSteal(v, true)
			fails = 0
			continue
		}
		w.observeSteal(v, false)
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || w.pool.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			if w.chs != nil {
				// No park/unpark protocol to force here; the sleep-phase
				// decision only gets delay/yield faults.
				w.chs.Point(chaos.PointParkDecision)
			}
			// Closest analogue of PARK in this backend: the spin phase
			// gives way to sleeping (there is no parking engine here).
			if fails == 1024 && w.trc != nil {
				w.trc.Record(trace.KindPark, 0, 0)
			}
			d := time.Duration(fails-1023) * time.Microsecond
			if d > w.pool.opts.MaxIdleSleep {
				d = w.pool.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	w.pool.wg.Done()
}
