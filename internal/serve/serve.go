// Package serve is woolserve: a concurrent request-serving layer over
// the scheduler registry (ROADMAP item 1). The paper's pool runs one
// root task at a time — Run calls must not overlap — which fits batch
// kernels but not a service executing many small independent task DAGs
// submitted concurrently. woolserve bridges the two worlds without
// touching the hot protocol:
//
//   - Submission. Submit(ctx, tenant, job) enqueues a request and
//     returns a Ticket; Ticket.Wait blocks for the result. Any number
//     of goroutines may submit concurrently: serialization onto the
//     single-root pools happens here, not in user code, which is what
//     turns the backends' concurrent-Run guard (poolerr.
//     ErrConcurrentRun) from a trap into an internal invariant.
//
//   - Lanes. The server partitions its Workers into lanes — small
//     independent pools of LaneWidth workers each — and each lane
//     drains requests one at a time. Requests are small (that is the
//     fine-grained premise), so cross-request parallelism comes from
//     many lanes rather than one wide pool; within a request the
//     lane's pool supplies the paper's work-stealing parallelism.
//
//   - Weighted tenant fairness. Named tenants own demand-sized worker
//     teams, the deterministic team-building idea of Wimmer & Träff
//     (arXiv:1012.5030): each tenant's team is sized proportionally to
//     its weight (never below one lane), so a flooding tenant cannot
//     starve the others, and idle teams help the busiest queue
//     (work conservation) instead of spinning.
//
//   - Admission control. Each tenant's pending queue is bounded
//     (MaxPending); a submission beyond the bound fails fast with
//     ErrOverloaded rather than queueing unboundedly — the service
//     analogue of the task-stack's overflow-inline degradation: under
//     sustained overload, shed load at the boundary, never corrupt or
//     stall the runtime.
//
//   - Per-request cancellation. A request's context cancels or times
//     out mid-flight: the lane aborts its pool (sched.Abortable, the
//     request-scoped poison of internal/core, DESIGN.md §16), the
//     request unwinds with the context's error, and the pool is Reset
//     back into service for the next request. Backends without
//     Caps.Serve still get per-request panic isolation — the lane
//     replaces a poisoned pool — but cannot interrupt a running
//     request before it completes.
//
//   - Self-healing (DESIGN.md §17, internal/resilience). The per-
//     request mechanisms above handle one bad request; the resilience
//     layer handles *sustained* failure: a per-tenant circuit breaker
//     sheds a persistently failing tenant (ErrCircuitOpen), deadline-
//     aware admission sheds requests whose remaining deadline is below
//     the learned service time for their class (ErrDeadlineUnmeetable),
//     caller-marked retry-safe requests are retried under a budget with
//     jittered backoff, and a lane whose Reset fails or whose failures
//     streak is quarantined — pulled from rotation, hot-replaced, and
//     probed back to health. All of it defaults on; Options.Resilience
//     tunes or disables each subsystem, Server.Health observes it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/poolerr"
	"gowool/internal/resilience"
	"gowool/internal/sched"
)

// Sentinel errors returned by Submit and Ticket.Wait. The shed
// sentinels (ErrOverloaded, ErrCircuitOpen, ErrDeadlineUnmeetable)
// carry poolerr.ClassShed, so poolerr.ClassOf distinguishes load
// shedding from real failures anywhere the wrapped error travels.
var (
	// ErrOverloaded rejects a submission that found the tenant's
	// pending queue full (admission control; see Options.MaxPending).
	ErrOverloaded = poolerr.Shed(errors.New("serve: tenant queue full"))
	// ErrCircuitOpen rejects a submission while the tenant's circuit
	// breaker is open (or half-open with its probe quota in flight).
	ErrCircuitOpen = poolerr.Shed(errors.New("serve: tenant circuit open"))
	// ErrDeadlineUnmeetable rejects a submission whose remaining
	// deadline is below the estimated service time for its job class.
	ErrDeadlineUnmeetable = poolerr.Shed(errors.New("serve: deadline unmeetable"))
	// ErrClosed rejects submissions to (and fails tickets drained by)
	// a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrUnknownTenant rejects a submission naming a tenant the server
	// was not built with.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
)

// PanicError wraps a panic that escaped a request's task tree; it is
// the request's Wait error (the pool itself is revived or replaced by
// the lane, so one panicking request cannot poison the next).
type PanicError struct{ Val any }

// Error describes the panic.
func (e *PanicError) Error() string { return fmt.Sprintf("serve: request panicked: %v", e.Val) }

// ErrorClass classifies a request panic as retryable (DESIGN.md §17):
// the pool is revived, so a re-run is safe to attempt, and the retry
// budget bounds the amplification when the panic is deterministic.
func (e *PanicError) ErrorClass() poolerr.Class { return poolerr.ClassRetryable }

// Job is one request: a root task DAG to run on a lane's pool. Build
// one with Rec or Range.
type Job interface {
	runOn(p sched.Pool) int64
	// class keys the per-tenant service-time estimator: the job's
	// declared Name, or the job shape when unnamed.
	class() string
}

type recJob struct{ j sched.RecJob }

func (r recJob) runOn(p sched.Pool) int64 { return p.RunRec(r.j) }

func (r recJob) class() string {
	if r.j.Name != "" {
		return r.j.Name
	}
	return "rec"
}

// Rec wraps a divide-and-conquer job as a servable request.
func Rec(j sched.RecJob) Job { return recJob{j} }

type rangeJob struct{ j sched.RangeJob }

func (r rangeJob) runOn(p sched.Pool) int64 { return p.RunRange(r.j) }

func (r rangeJob) class() string {
	if r.j.Name != "" {
		return r.j.Name
	}
	return "range"
}

// Range wraps an index-range job as a servable request.
func Range(j sched.RangeJob) Job { return rangeJob{j} }

// Tenant configures one named tenant (a team in the arXiv:1012.5030
// sense).
type Tenant struct {
	// Name is the Submit key. Must be unique; one tenant may be "".
	Name string
	// Weight sizes the tenant's lane team relative to the other
	// tenants; <= 0 means 1. Every tenant gets at least one lane.
	Weight int
	// MaxPending overrides Options.MaxPending for this tenant when
	// positive.
	MaxPending int
	// Resilience overrides the server-wide resilience defaults for this
	// tenant; nil fields inherit Options.Resilience.
	Resilience *resilience.TenantConfig
}

// Options configures a Server. The zero value serves a single
// anonymous tenant on the wool backend with GOMAXPROCS workers.
type Options struct {
	// Backend is the registry scheduler to build lanes from; default
	// "wool".
	Backend string
	// Workers is the total worker budget across all lanes; default
	// GOMAXPROCS.
	Workers int
	// LaneWidth is the workers per lane. Default 1: requests are
	// assumed fine-grained, so throughput comes from many independent
	// lanes; raise it when single-request latency needs intra-request
	// stealing.
	LaneWidth int
	// MaxPending bounds each tenant's pending queue; a submission
	// beyond it fails with ErrOverloaded. Default 1024.
	MaxPending int
	// Tenants declares the named tenants; empty means one anonymous
	// tenant ("") of weight 1.
	Tenants []Tenant
	// Pool is the base options for every lane pool. Workers is
	// overridden with LaneWidth. Note that PrivateTasks trades abort
	// latency for join cost: the request-scoped abort token is checked
	// on the generic join path, which private joins on the generated
	// fast path bypass — the default all-public lanes observe a
	// cancellation within a few dozen joins.
	Pool sched.Options
	// ConfigurePool, when non-nil, edits each lane's pool options
	// before construction (lane is the global lane index). Used by the
	// chaos torture suite to attach per-lane injectors.
	ConfigurePool func(lane int, o *sched.Options)
	// Resilience configures the self-healing layer. The zero value
	// enables every subsystem (breaker, deadline admission, retries,
	// lane quarantine) with the defaults documented in
	// internal/resilience; the Disable* switches turn subsystems off.
	Resilience resilience.Options
	// Chaos, when non-nil, injects faults at the serving layer's
	// control-plane points (lane-reset-fail, submit-storm, probe-fail)
	// for the torture suites. Nil means no injection.
	Chaos *chaos.ServeInjector
}

// Ticket is a submitted request's handle.
type Ticket struct {
	// Retryable records whether the server may re-run this request on a
	// failure-class outcome: the caller marked it retry-safe
	// (SubmitOptions.Retryable) and server-side retries are enabled.
	// Read-only after Submit.
	Retryable bool

	job       Job
	ctx       context.Context
	tn        *tenant
	submitted time.Time
	class     string

	// attempt counts completed runs; probe marks the ticket as a half-
	// open breaker probe whose outcome must be reported via ProbeDone.
	// Both are touched only by the owning lane (one attempt at a time).
	attempt int
	probe   bool

	// val/err/latency are published by the close of done.
	val     int64
	err     error
	latency time.Duration
	done    chan struct{}
}

// Wait blocks until the request finished (completed, cancelled,
// panicked, or failed by Close) and returns its result. The result of
// a cancelled or failed request is 0 with the classifying error:
// the request context's error for cancellations, a *PanicError for
// task panics, ErrClosed for requests drained by Close.
func (t *Ticket) Wait() (int64, error) {
	<-t.done
	return t.val, t.err
}

// Done returns a channel closed when the request finishes, for callers
// multiplexing tickets with select.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Latency returns the submit-to-finish latency; valid after Wait/Done.
func (t *Ticket) Latency() time.Duration { return t.latency }

// tenant is the runtime state of one configured Tenant.
type tenant struct {
	name       string
	weight     int
	maxPending int
	lanes      int

	// Resilience state; any of these is nil when its subsystem is
	// disabled server-wide.
	breaker *resilience.Breaker
	est     *resilience.Estimator
	retrier *resilience.Retrier

	// q is the FIFO pending queue, guarded by the server mutex.
	q []*Ticket

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64

	// Shed-cause breakout: rejected == shedOverload + shedCircuit +
	// shedDeadline. retried counts server-side re-runs (attempts beyond
	// a ticket's first).
	shedOverload atomic.Int64
	shedCircuit  atomic.Int64
	shedDeadline atomic.Int64
	retried      atomic.Int64
}

// pop removes and returns the oldest pending ticket (server mutex
// held), or nil.
func (tn *tenant) pop() *Ticket {
	if len(tn.q) == 0 {
		return nil
	}
	t := tn.q[0]
	tn.q[0] = nil
	tn.q = tn.q[1:]
	return t
}

// Server is the serving runtime. Create with New, submit with Submit,
// stop with Close.
type Server struct {
	opts    Options
	sch     sched.Scheduler
	caps    sched.Caps
	tenants []*tenant
	byName  map[string]*tenant
	lanes   []*lane

	res  resilience.Options
	qcfg resilience.QuarantineConfig
	inj  *chaos.ServeInjector

	// closeCh is closed by Close; quarantined lanes select on it so a
	// probe backoff never outlives the server.
	closeCh chan struct{}

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	// retryTimers holds the backoff timer of every ticket waiting to be
	// re-enqueued. Map presence is the ownership token between requeue
	// and Close: whoever removes the entry (or finds the map nil)
	// finalizes the ticket, so done is closed exactly once.
	retryTimers map[*Ticket]*time.Timer
	wg          sync.WaitGroup
}

// New builds and starts a server: lanes are constructed (validating
// the lane pool options against the backend's capabilities, see
// sched.CheckOptions) and their drain loops started. The caller must
// Close it.
func New(o Options) (*Server, error) {
	if o.Backend == "" {
		o.Backend = "wool"
	}
	sch, ok := sched.Lookup(o.Backend)
	if !ok {
		return nil, fmt.Errorf("serve: unknown backend %q (registered: %v)", o.Backend, sched.Names())
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.LaneWidth <= 0 {
		o.LaneWidth = 1
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1024
	}
	tens := o.Tenants
	if len(tens) == 0 {
		tens = []Tenant{{Name: "", Weight: 1}}
	}

	s := &Server{opts: o, sch: sch, caps: sch.Caps(), byName: map[string]*tenant{}}
	s.cond = sync.NewCond(&s.mu)
	s.res = o.Resilience
	s.qcfg = o.Resilience.Quarantine.Defaulted()
	s.inj = o.Chaos
	s.closeCh = make(chan struct{})
	s.retryTimers = map[*Ticket]*time.Timer{}
	seed := o.Resilience.Seed
	if seed == 0 {
		// Fixed default so retry jitter is replayable by construction.
		seed = 0x77005eed
	}
	for ti, tc := range tens {
		if _, dup := s.byName[tc.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		tn := &tenant{name: tc.Name, weight: tc.Weight, maxPending: tc.MaxPending}
		if tn.weight <= 0 {
			tn.weight = 1
		}
		if tn.maxPending <= 0 {
			tn.maxPending = o.MaxPending
		}
		bcfg, ecfg, rcfg := s.res.Breaker, s.res.Estimator, s.res.Retry
		if tc.Resilience != nil {
			if tc.Resilience.Breaker != nil {
				bcfg = *tc.Resilience.Breaker
			}
			if tc.Resilience.Estimator != nil {
				ecfg = *tc.Resilience.Estimator
			}
			if tc.Resilience.Retry != nil {
				rcfg = *tc.Resilience.Retry
			}
		}
		if !s.res.DisableBreaker {
			tn.breaker = resilience.NewBreaker(bcfg, nil)
		}
		if !s.res.DisableDeadline {
			tn.est = resilience.NewEstimator(ecfg)
		}
		if !s.res.DisableRetry {
			tn.retrier = resilience.NewRetrier(rcfg, seed^(0x9e3779b97f4a7c15*uint64(ti+1)))
		}
		s.tenants = append(s.tenants, tn)
		s.byName[tc.Name] = tn
	}

	laneCounts := apportionLanes(s.tenants, o.Workers/o.LaneWidth)
	laneIdx := 0
	for ti, tn := range s.tenants {
		tn.lanes = laneCounts[ti]
		for k := 0; k < laneCounts[ti]; k++ {
			po := o.Pool
			po.Workers = o.LaneWidth
			if o.ConfigurePool != nil {
				o.ConfigurePool(laneIdx, &po)
			}
			if err := sched.CheckOptions(s.caps, po); err != nil {
				for _, l := range s.lanes {
					l.pool.Close()
				}
				return nil, fmt.Errorf("serve: lane %d options unsupported by backend %s: %w", laneIdx, o.Backend, err)
			}
			l := &lane{srv: s, idx: laneIdx, tn: tn, opts: po}
			l.pool = sch.NewPool(po)
			if s.caps.Serve {
				l.ab, _ = l.pool.Native().(sched.Abortable)
			}
			s.lanes = append(s.lanes, l)
			laneIdx++
		}
	}

	for _, l := range s.lanes {
		s.wg.Add(1)
		go l.loop()
	}
	return s, nil
}

// apportionLanes sizes each tenant's lane team: every tenant gets at
// least one lane, and the remainder is distributed proportionally to
// weight (largest remainder, ties to the earlier tenant — the
// deterministic team building of arXiv:1012.5030 specialized to a
// static weight vector).
func apportionLanes(tens []*tenant, totalLanes int) []int {
	n := len(tens)
	if totalLanes < n {
		totalLanes = n
	}
	counts := make([]int, n)
	var weightSum int
	for i, tn := range tens {
		counts[i] = 1
		weightSum += tn.weight
	}
	rem := totalLanes - n
	fracs := make([]int, n)
	given := 0
	for i, tn := range tens {
		share := rem * tn.weight / weightSum
		counts[i] += share
		fracs[i] = rem*tn.weight - share*weightSum
		given += share
	}
	for given < rem {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		given++
	}
	return counts
}

// SubmitOptions refines one submission.
type SubmitOptions struct {
	// Retryable marks the request retry-safe: its job is idempotent (or
	// the caller tolerates re-execution), so on a failure-class outcome
	// the server may re-run it under the tenant's retry budget with
	// jittered backoff instead of failing the ticket. Cancellations and
	// sheds are never retried.
	Retryable bool
}

// Submit enqueues job for tenantName under ctx and returns its Ticket.
// It never blocks: a full tenant queue rejects with ErrOverloaded, an
// open breaker with ErrCircuitOpen, a doomed deadline with
// ErrDeadlineUnmeetable, a closed server with ErrClosed, an unknown
// tenant with ErrUnknownTenant (all wrapped with context). A nil ctx
// means context.Background(). ctx governs the request end to end: a
// cancellation while queued fails the ticket at dispatch; a
// cancellation mid-run aborts the lane's pool when the backend has
// Caps.Serve.
func (s *Server) Submit(ctx context.Context, tenantName string, job Job) (*Ticket, error) {
	return s.SubmitWith(ctx, tenantName, job, SubmitOptions{})
}

// SubmitWith is Submit with per-submission options.
func (s *Server) SubmitWith(ctx context.Context, tenantName string, job Job, so SubmitOptions) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	tn, ok := s.byName[tenantName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	if len(tn.q) >= tn.maxPending {
		s.mu.Unlock()
		tn.rejected.Add(1)
		tn.shedOverload.Add(1)
		return nil, fmt.Errorf("%w: tenant %q has %d pending", ErrOverloaded, tenantName, tn.maxPending)
	}
	if s.inj.Fail(chaos.ServeSubmitStorm) {
		s.mu.Unlock()
		tn.rejected.Add(1)
		tn.shedOverload.Add(1)
		return nil, fmt.Errorf("%w: tenant %q storm-shed (chaos)", ErrOverloaded, tenantName)
	}
	class := job.class()
	if tn.est != nil {
		if dl, has := ctx.Deadline(); has && tn.est.Unmeetable(class, time.Until(dl)) {
			s.mu.Unlock()
			tn.rejected.Add(1)
			tn.shedDeadline.Add(1)
			return nil, fmt.Errorf("%w: tenant %q class %q", ErrDeadlineUnmeetable, tenantName, class)
		}
	}
	// The breaker decides last: every earlier check sheds without
	// having consumed a half-open probe slot.
	var probe bool
	if tn.breaker != nil {
		admit, p := tn.breaker.Allow()
		if !admit {
			s.mu.Unlock()
			tn.rejected.Add(1)
			tn.shedCircuit.Add(1)
			return nil, fmt.Errorf("%w: tenant %q", ErrCircuitOpen, tenantName)
		}
		probe = p
	}
	t := &Ticket{
		Retryable: so.Retryable && tn.retrier != nil,
		job:       job, ctx: ctx, tn: tn,
		submitted: time.Now(), class: class, probe: probe,
		done: make(chan struct{}),
	}
	tn.q = append(tn.q, t)
	tn.submitted.Add(1)
	s.mu.Unlock()
	s.cond.Signal()
	return t, nil
}

// scheduleRetry arms t's backoff timer; after backoff the ticket goes
// back to its tenant's queue. Reports false when the server is closing
// (the caller then finalizes the ticket itself).
func (s *Server) scheduleRetry(t *Ticket, backoff time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retryTimers == nil {
		return false
	}
	s.retryTimers[t] = time.AfterFunc(backoff, func() { s.requeue(t) })
	return true
}

// requeue moves a backed-off ticket to the tail of its tenant's queue,
// unless Close claimed it first (then Close finalizes it). A queue that
// refilled past its bound while the ticket backed off sheds the retry:
// the ticket fails with ErrOverloaded rather than stretching the bound.
func (s *Server) requeue(t *Ticket) {
	s.mu.Lock()
	if s.retryTimers == nil {
		s.mu.Unlock()
		return
	}
	if _, mine := s.retryTimers[t]; !mine {
		s.mu.Unlock()
		return
	}
	delete(s.retryTimers, t)
	tn := t.tn
	if len(tn.q) >= tn.maxPending {
		s.mu.Unlock()
		finishTicket(t, 0, fmt.Errorf("%w: tenant %q retry shed, %d pending", ErrOverloaded, tn.name, tn.maxPending))
		return
	}
	tn.q = append(tn.q, t)
	s.mu.Unlock()
	s.cond.Signal()
}

// Close stops the server: pending requests (queued or backing off for
// a retry) are failed with ErrClosed, in-flight requests run to
// completion, and every lane pool is closed. Idempotent; Submit after
// Close returns ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.closeCh)
	var drained []*Ticket
	for _, tn := range s.tenants {
		drained = append(drained, tn.q...)
		tn.q = nil
	}
	// Claim the backing-off tickets: once retryTimers is nil, a timer
	// that fires anyway finds no entry and leaves finalization to us.
	timers := s.retryTimers
	s.retryTimers = nil
	s.mu.Unlock()
	s.cond.Broadcast()
	for t, tm := range timers {
		tm.Stop()
		drained = append(drained, t)
	}
	for _, t := range drained {
		t.tn.failed.Add(1)
		t.err = ErrClosed
		t.latency = time.Since(t.submitted)
		close(t.done)
	}
	s.wg.Wait()
}

// TenantStats is one tenant's counters in a Stats snapshot.
type TenantStats struct {
	Name      string
	Weight    int
	Lanes     int
	Pending   int
	Submitted int64 // accepted submissions
	Completed int64 // finished with a result
	Rejected  int64 // shed by admission control (the three Shed* causes)
	Cancelled int64 // failed by their context (queued or mid-flight)
	Failed    int64 // task panics, and tickets drained by Close

	// Shed-cause breakout: Rejected == ShedOverload + ShedCircuitOpen +
	// ShedDeadline.
	ShedOverload    int64 // queue full (ErrOverloaded), incl. chaos storms
	ShedCircuitOpen int64 // breaker open (ErrCircuitOpen)
	ShedDeadline    int64 // deadline unmeetable (ErrDeadlineUnmeetable)
	// Retried counts server-side re-runs of retry-safe requests
	// (attempts beyond each ticket's first).
	Retried int64
}

// Stats is a point-in-time server snapshot.
type Stats struct {
	Backend string
	Lanes   int
	// Quarantines / Replacements total the lanes' self-healing events:
	// quarantine entries, and pool replacements (quarantine rounds plus
	// the inline replacements of non-Abortable backends).
	Quarantines  int64
	Replacements int64
	Tenants      []TenantStats
}

// Stats snapshots the per-tenant counters. Safe to call concurrently
// with submissions and while lanes are serving.
func (s *Server) Stats() Stats {
	out := Stats{Backend: s.opts.Backend, Lanes: len(s.lanes)}
	for _, l := range s.lanes {
		out.Quarantines += l.quarantines.Load()
		out.Replacements += l.replacements.Load()
	}
	s.mu.Lock()
	pending := make([]int, len(s.tenants))
	for i, tn := range s.tenants {
		pending[i] = len(tn.q)
	}
	s.mu.Unlock()
	for i, tn := range s.tenants {
		out.Tenants = append(out.Tenants, TenantStats{
			Name:            tn.name,
			Weight:          tn.weight,
			Lanes:           tn.lanes,
			Pending:         pending[i],
			Submitted:       tn.submitted.Load(),
			Completed:       tn.completed.Load(),
			Rejected:        tn.rejected.Load(),
			Cancelled:       tn.cancelled.Load(),
			Failed:          tn.failed.Load(),
			ShedOverload:    tn.shedOverload.Load(),
			ShedCircuitOpen: tn.shedCircuit.Load(),
			ShedDeadline:    tn.shedDeadline.Load(),
			Retried:         tn.retried.Load(),
		})
	}
	return out
}
