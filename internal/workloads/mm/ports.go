package mm

import (
	"gowool/internal/chaselev"
	"gowool/internal/locksched"
)

// Ports of the row-range multiply to the other native schedulers, for
// cross-scheduler validation and native micro-comparisons (the
// simulator, not these ports, produces the paper's multi-processor
// figures).

// NewChaseLev builds the row-range task on the deque scheduler.
func NewChaseLev() *chaselev.TaskDefC2[Matrices] {
	var rows *chaselev.TaskDefC2[Matrices]
	rows = chaselev.DefineC2("mm-rows", func(w *chaselev.Worker, m *Matrices, lo, hi int64) int64 {
		if hi-lo == 1 {
			m.Row(lo)
			return 1
		}
		mid := (lo + hi) / 2
		rows.Spawn(w, m, mid, hi)
		a := rows.Call(w, m, lo, mid)
		b := rows.Join(w)
		return a + b
	})
	return rows
}

// RunChaseLev multiplies on the deque pool.
func RunChaseLev(p *chaselev.Pool, rows *chaselev.TaskDefC2[Matrices], m *Matrices) int64 {
	return p.Run(func(w *chaselev.Worker) int64 { return rows.Call(w, m, 0, m.N) })
}

// NewLockSched builds the row-range task on the lock ladder.
func NewLockSched() *locksched.TaskDefC2[Matrices] {
	var rows *locksched.TaskDefC2[Matrices]
	rows = locksched.DefineC2("mm-rows", func(w *locksched.Worker, m *Matrices, lo, hi int64) int64 {
		if hi-lo == 1 {
			m.Row(lo)
			return 1
		}
		mid := (lo + hi) / 2
		rows.Spawn(w, m, mid, hi)
		a := rows.Call(w, m, lo, mid)
		b := rows.Join(w)
		return a + b
	})
	return rows
}

// RunLockSched multiplies on the lock-ladder pool.
func RunLockSched(p *locksched.Pool, rows *locksched.TaskDefC2[Matrices], m *Matrices) int64 {
	return p.Run(func(w *locksched.Worker) int64 { return rows.Call(w, m, 0, m.N) })
}
