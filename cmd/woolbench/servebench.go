package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"gowool/internal/sched"
	"gowool/internal/serve"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// The serving benchmark (woolbench -serve FILE) measures woolserve,
// the concurrent request-serving layer (internal/serve, DESIGN.md
// §16): closed-loop clients drive a request stream through a server on
// the wool and woolgen backends, and the report carries throughput
// (req/s) and the submit-to-finish latency percentiles per cell. The
// mixed cell adds short-deadline requests, so the abort/Reset
// cancellation path runs inside the measured stream rather than only
// in tests.

// serveBenchSchema versions the report shape for downstream readers
// (make serve-smoke greps it).
const serveBenchSchema = "wool-serve-bench/v1"

// serveReport is the machine-readable output of -serve.
type serveReport struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Scale      string            `json:"scale"`
	Cells      []serveCell       `json:"cells"`
	Notes      map[string]string `json:"notes"`
}

// serveCell is one backend × workload stream measurement.
type serveCell struct {
	Backend   string `json:"backend"`
	Workload  string `json:"workload"`
	Workers   int    `json:"workers"`
	LaneWidth int    `json:"lane_width"`
	Clients   int    `json:"clients"`
	Requests  int    `json:"requests"`
	Completed int    `json:"completed"`
	Cancelled int    `json:"cancelled"`
	// ReqPerS is completed+cancelled requests over the stream's
	// wall-clock (a cancelled request still occupies its lane until
	// the abort unwinds, so it belongs in the service rate).
	ReqPerS float64 `json:"req_per_s"`
	// Latency percentiles over the COMPLETED requests' submit-to-
	// finish time (queueing included — this is a serving benchmark).
	LatP50Us float64 `json:"lat_p50_us"`
	LatP90Us float64 `json:"lat_p90_us"`
	LatP99Us float64 `json:"lat_p99_us"`
}

// serveWorkload describes one request stream shape.
type serveWorkload struct {
	name string
	// job returns the i-th request's job and, when the request should
	// carry a deadline, a positive timeout.
	job func(i int) (serve.Job, time.Duration)
}

// serveSpinJob is the mixed stream's slow request: a small task tree
// whose leaves busy-spin, so a 1-2ms deadline can land mid-flight
// (same probe shape as the serve torture suite). Completed value is
// the leaf count.
func serveSpinJob(depth int64, spin time.Duration) serve.Job {
	return serve.Rec(sched.RecJob{
		Name: "spin",
		Root: depth,
		Leaf: func(n int64) (int64, bool) {
			if n > 0 {
				return 0, false
			}
			end := time.Now().Add(spin)
			for time.Now().Before(end) {
			}
			return 1, true
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 1 },
	})
}

func runServeBench(path string, full bool) error {
	const (
		workers   = 4
		laneWidth = 1
		clients   = 4
	)
	requests := 400
	scale := "quick"
	if full {
		requests = 4000
		scale = "full"
	}
	gmp := runtime.GOMAXPROCS(0)
	if gmp < workers {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(gmp)
	}

	rep := serveReport{
		Schema:     serveBenchSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Notes: map[string]string{
			"setup":  fmt.Sprintf("%d closed-loop clients over a %d-worker server (lane width %d); latency percentiles over completed requests, submit to finish", clients, workers, laneWidth),
			"mixed":  "the mixed cell gives 1 in 4 requests a 1-2ms deadline over a slow spinning job, so mid-flight aborts and pool Resets happen inside the measured stream",
			"intent": "throughput and tail latency of the serving layer per backend; req_per_s counts completed+cancelled (a cancelled request occupies its lane until the abort unwinds)",
		},
	}

	workloads := []serveWorkload{
		{name: "fib16", job: func(i int) (serve.Job, time.Duration) {
			return serve.Rec(fibw.Job(16, 1)), 0
		}},
		{name: "stress", job: func(i int) (serve.Job, time.Duration) {
			return serve.Rec(stress.Job(6, 100, 1)), 0
		}},
		{name: "mixed-cancel", job: func(i int) (serve.Job, time.Duration) {
			if i%4 == 0 {
				return serveSpinJob(4, 200*time.Microsecond), time.Duration(1+i%2) * time.Millisecond
			}
			return serve.Rec(fibw.Job(16, 1)), 0
		}},
	}

	for _, backend := range []string{"wool", "woolgen"} {
		for _, wl := range workloads {
			cell, err := runServeCell(backend, wl, workers, laneWidth, clients, requests)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Printf("  %-8s %-13s %8.0f req/s  p50=%-8.1fus p90=%-8.1fus p99=%-8.1fus completed=%d cancelled=%d\n",
				cell.Backend, cell.Workload, cell.ReqPerS, cell.LatP50Us, cell.LatP90Us, cell.LatP99Us,
				cell.Completed, cell.Cancelled)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runServeCell drives one request stream and aggregates its outcomes.
func runServeCell(backend string, wl serveWorkload, workers, laneWidth, clients, requests int) (serveCell, error) {
	cell := serveCell{
		Backend: backend, Workload: wl.name,
		Workers: workers, LaneWidth: laneWidth,
		Clients: clients, Requests: requests,
	}
	s, err := serve.New(serve.Options{
		Backend:   backend,
		Workers:   workers,
		LaneWidth: laneWidth,
	})
	if err != nil {
		return cell, err
	}
	defer s.Close()

	type clientOut struct {
		lats                 []time.Duration
		completed, cancelled int
		err                  error
	}
	results := make(chan clientOut, clients)
	perClient := requests / clients
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			var out clientOut
			defer func() { results <- out }()
			for i := 0; i < perClient; i++ {
				job, timeout := wl.job(c*perClient + i)
				ctx := context.Background()
				var cancel context.CancelFunc
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				tk, err := s.Submit(ctx, "", job)
				if err != nil {
					if cancel != nil {
						cancel()
					}
					out.err = fmt.Errorf("%s/%s: submit: %w", backend, wl.name, err)
					return
				}
				_, werr := tk.Wait()
				if cancel != nil {
					cancel()
				}
				switch {
				case werr == nil:
					out.lats = append(out.lats, tk.Latency())
					out.completed++
				case errors.Is(werr, context.DeadlineExceeded) || errors.Is(werr, context.Canceled):
					out.cancelled++
				default:
					out.err = fmt.Errorf("%s/%s: request failed: %w", backend, wl.name, werr)
					return
				}
			}
		}()
	}
	var lats []time.Duration
	for c := 0; c < clients; c++ {
		out := <-results
		if out.err != nil {
			return cell, out.err
		}
		lats = append(lats, out.lats...)
		cell.Completed += out.completed
		cell.Cancelled += out.cancelled
	}
	elapsed := time.Since(start)
	cell.ReqPerS = float64(cell.Completed+cell.Cancelled) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cell.LatP50Us = pctUs(lats, 50)
	cell.LatP90Us = pctUs(lats, 90)
	cell.LatP99Us = pctUs(lats, 99)
	return cell, nil
}

// pctUs reads the p-th percentile of sorted latencies in microseconds.
func pctUs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return float64(sorted[idx]) / float64(time.Microsecond)
}
