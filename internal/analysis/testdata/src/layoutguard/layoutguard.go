// Package layoutguard is the analysistest fixture for the layoutguard
// pass: cacheline groups must be >= 64 bytes apart, maxspan bounds a
// group's extent, and size=N pins a struct's total size. Field sizes
// below are fixed-width so the layout is identical on every 64-bit
// target.
package layoutguard

// woolvet:cacheline size=32
type sized struct {
	a, b, c, d int64
}

// woolvet:cacheline size=64
type wrongSize struct { // want `struct wrongSize is 16 bytes but is declared woolvet:cacheline size=64`
	a int64
	b int64
}

type padded struct {
	// woolvet:cacheline group=owner
	top int64
	rng uint64

	_ [64]byte

	// woolvet:cacheline group=protocol maxspan=16
	bot   int64
	limit int64
}

type unpadded struct {
	// woolvet:cacheline group=owner
	top int64

	// woolvet:cacheline group=protocol
	bot int64 // want `cache-line group "protocol" starts 0 bytes after the last field of group "owner"`
}

type overspan struct {
	// woolvet:cacheline group=wide maxspan=8
	a int64 // want `cache-line group "wide" in overspan spans 16 bytes, more than its declared maxspan=8`
	b int64
}

type emptyGroup struct {
	// woolvet:cacheline group=ghost
	_ [64]byte // want `cache-line group "ghost" in emptyGroup contains no fields`
}

// generic structs have no concrete layout and are skipped.
type generic[T any] struct {
	// woolvet:cacheline group=g
	v T
}
