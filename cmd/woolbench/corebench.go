package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gowool/internal/core"
	"gowool/internal/trace"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// coreBenchReport is the machine-readable perf snapshot written by
// -corejson. Future PRs diff these files to track the fast-path and
// idle-engine trajectory.
type coreBenchReport struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	Counters   map[string]int64   `json:"counters"`
	Notes      map[string]string  `json:"notes"`
}

// spawnJoinNs measures one spawn+join pair on a single-worker pool
// (Table II's ladder, but against the live tree) in ns/op. On a
// private-task pool the pair is measured past the InitialPublic prefix
// (the first descriptors of a run are public even with PrivateTasks
// on), so the private number is the plain-stores path, not the
// public-slot path that depth 0 lands on.
func spawnJoinNs(private bool) float64 {
	p := core.NewPool(core.Options{Workers: 1, PrivateTasks: private})
	defer p.Close()
	noop := core.Define1("noop", func(w *core.Worker, x int64) int64 { return x })
	depth := 0
	if private {
		depth = 4
	}
	r := testing.Benchmark(func(b *testing.B) {
		p.Run(func(w *core.Worker) int64 {
			for i := 0; i < depth; i++ {
				noop.Spawn(w, 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				noop.Spawn(w, 1)
				noop.Join(w)
			}
			b.StopTimer()
			for i := 0; i < depth; i++ {
				noop.Join(w)
			}
			return 0
		})
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// fibWallMs runs fib(n) on a private-task pool and returns the best
// wall time in ms across reps, with parking forced to the given mode.
func fibWallMs(workers int, mode core.ParkMode, n int64, reps int) float64 {
	p := core.NewPool(core.Options{Workers: workers, PrivateTasks: true, Parking: mode})
	defer p.Close()
	fib := fibw.NewWool()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		p.Run(func(w *core.Worker) int64 { return fib.Call(w, n) })
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// waitParked polls until at least n workers are parked or the deadline
// expires.
func waitParked(p *core.Pool, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for p.ParkedWorkers() < n {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// idleWakeUs measures a small parallel region launched against a fully
// parked pool (wake + steal latency included) vs the same region on a
// warm pool, in µs per region.
func idleWakeUs() (parked, warm float64, ok bool) {
	p := core.NewPool(core.Options{Workers: 2, PrivateTasks: true,
		MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()
	tree := stress.NewWool()
	region := func() { stress.RunWool(p, tree, 4, 64, 1) }
	region() // warm up code paths

	const rounds = 50
	var parkedTotal time.Duration
	for i := 0; i < rounds; i++ {
		if !waitParked(p, 1, 2*time.Second) {
			return 0, 0, false
		}
		t0 := time.Now()
		region()
		parkedTotal += time.Since(t0)
	}
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		region()
	}
	warmTotal := time.Since(t0)
	us := func(d time.Duration) float64 {
		return float64(d) / float64(rounds) / float64(time.Microsecond)
	}
	return us(parkedTotal), us(warmTotal), true
}

// idleCPUMs measures process CPU time consumed across a 200ms window
// while an 8-worker pool sits quiescent, in ms. requireParked gates on
// the idle engine; with parking off the pool sleep-polls through the
// window instead.
func idleCPUMs(mode core.ParkMode, requireParked bool) (float64, bool) {
	p := core.NewPool(core.Options{Workers: 8, Parking: mode,
		MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()
	fib := fibw.NewWool()
	p.Run(func(w *core.Worker) int64 { return fib.Call(w, 16) })
	if requireParked {
		if !waitParked(p, 7, 5*time.Second) {
			return 0, false
		}
	} else {
		time.Sleep(20 * time.Millisecond) // settle into the sleep rung
	}
	before, ok := processCPUTime()
	if !ok {
		return 0, false
	}
	time.Sleep(200 * time.Millisecond)
	after, _ := processCPUTime()
	return float64(after-before) / float64(time.Millisecond), true
}

// coreCounters runs a steal-heavy private-task stress workload and
// returns the aggregate scheduler counters.
func coreCounters() core.Stats {
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1,
		MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()
	tree := stress.NewWool()
	for i := 0; i < 10; i++ {
		stress.RunWool(p, tree, 8, 256, 4)
		// Let workers park between regions so Parks/Wakes are exercised.
		waitParked(p, 1, time.Second)
	}
	return p.Stats()
}

// tracedFibRep runs one repetition of fib(n) on its own traced pool
// and writes the Chrome trace to path. The pool is separate from the
// timed ones and the repetition is never measured, so tracing cost
// (enabled-path records, the JSON export) cannot contaminate the
// benchmark numbers — only the first, throwaway repetition is traced.
func tracedFibRep(path string, workers int, n int64) error {
	tr := trace.New(workers, 0)
	p := core.NewPool(core.Options{Workers: workers, PrivateTasks: true, Trace: tr})
	fib := fibw.NewWool()
	p.Run(func(w *core.Worker) int64 { return fib.Call(w, n) })
	p.Close()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCoreBench produces BENCH_core.json: the native fast-path and
// idle-engine numbers guarded by this repo's acceptance criteria.
// When tracePath is non-empty, one extra untimed fib repetition runs
// on a traced pool first and its Chrome trace is written there.
func runCoreBench(path, tracePath string) error {
	gmp := runtime.GOMAXPROCS(0)
	if gmp < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(gmp)
	}
	rep := coreBenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]float64{},
		Counters:   map[string]int64{},
		Notes: map[string]string{
			"spawn_join":  "ns per spawn+join pair, single worker (Table II ladder); the private key is measured at depth 4, past the InitialPublic prefix",
			"fib28":       "best-of-3 wall ms, fib(28), 4 workers, private tasks",
			"idle_region": "µs per small stress region: launched against a fully parked pool vs warm",
			"idle_cpu":    "process CPU ms consumed over a 200ms quiescent window, 8 workers",
		},
	}

	fmt.Println("core: spawn/join ladder")
	rep.Benchmarks["spawn_join_private_ns"] = spawnJoinNs(true)
	rep.Benchmarks["spawn_join_public_ns"] = spawnJoinNs(false)

	if tracePath != "" {
		fmt.Println("core: traced fib repetition (untimed)")
		if err := tracedFibRep(tracePath, 4, 28); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", tracePath)
	}

	fmt.Println("core: fib(28) parking on vs off")
	rep.Benchmarks["fib28_parking_on_ms"] = fibWallMs(4, core.ParkOn, 28, 3)
	rep.Benchmarks["fib28_parking_off_ms"] = fibWallMs(4, core.ParkOff, 28, 3)

	fmt.Println("core: wake latency")
	if parked, warm, ok := idleWakeUs(); ok {
		rep.Benchmarks["region_from_parked_us"] = parked
		rep.Benchmarks["region_warm_us"] = warm
	}

	fmt.Println("core: quiescent CPU")
	if ms, ok := idleCPUMs(core.ParkOn, true); ok {
		rep.Benchmarks["idle_cpu_parked_ms"] = ms
	}
	if ms, ok := idleCPUMs(core.ParkOff, false); ok {
		rep.Benchmarks["idle_cpu_sleep_poll_ms"] = ms
	}

	fmt.Println("core: counter sweep (stress, tight public boundary)")
	st := coreCounters()
	rep.Counters["spawns"] = st.Spawns
	rep.Counters["steals"] = st.Steals
	rep.Counters["steal_attempts"] = st.StealAttempts
	rep.Counters["backoffs"] = st.Backoffs
	rep.Counters["publications"] = st.Publications
	rep.Counters["privatizations"] = st.Privatizations
	rep.Counters["retained_steals"] = st.RetainedSteals
	rep.Counters["parks"] = st.Parks
	rep.Counters["wakes"] = st.Wakes

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
