package stress

import (
	"gowool/internal/chaselev"
	"gowool/internal/ompstyle"
)

// Ports of the stress kernel to the remaining native schedulers.

// NewChaseLev builds the task tree on the deque scheduler.
func NewChaseLev() *chaselev.TaskDef2 {
	var tree *chaselev.TaskDef2
	tree = chaselev.Define2("stress", func(w *chaselev.Worker, height, iters int64) int64 {
		if height == 0 {
			return SpinLeaf(iters)
		}
		tree.Spawn(w, height-1, iters)
		a := tree.Call(w, height-1, iters)
		b := tree.Join(w)
		return a + b
	})
	return tree
}

// RunChaseLev executes reps serialized repetitions on the deque pool.
func RunChaseLev(p *chaselev.Pool, tree *chaselev.TaskDef2, height, iters, reps int64) int64 {
	return p.Run(func(w *chaselev.Worker) int64 {
		var total int64
		for r := int64(0); r < reps; r++ {
			total += tree.Call(w, height, iters)
		}
		return total
	})
}

// OMP runs one tree with OpenMP-style tasks (spawn one child task per
// node, compute the other branch inline, taskwait).
func OMP(tc *ompstyle.Context, height, iters int64) int64 {
	if height == 0 {
		return SpinLeaf(iters)
	}
	var a int64
	tc.SpawnTask(func(tc2 *ompstyle.Context) { a = OMP(tc2, height-1, iters) })
	b := OMP(tc, height-1, iters)
	tc.Taskwait()
	return a + b
}

// RunOMP executes reps serialized repetitions on the OpenMP-style pool.
func RunOMP(p *ompstyle.Pool, height, iters, reps int64) int64 {
	return p.Run(func(tc *ompstyle.Context) int64 {
		var total int64
		for r := int64(0); r < reps; r++ {
			total += OMP(tc, height, iters)
		}
		return total
	})
}
