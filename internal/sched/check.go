package sched

import (
	"errors"
	"fmt"
	"strings"
)

// CheckOptions reports, before pool construction, every way o asks for
// a capability that caps does not advertise. Historically the adapters
// silently ignored unsupported options (by design, so registry sweeps
// can hand one Options to every backend), and the CLIs only rejected a
// flag when the backend had no capability list at all — so a flag
// naming an unsupported member of a non-empty list (for example
// -stealamount half on the direct task stack, which only takes one
// task per steal) fell back to the default without a word. Callers
// that want fail-fast semantics — cmd/woolrun, cmd/woolbench's serve
// mode, the serving layer's lane construction — run this first and
// refuse to build the pool on a non-nil error.
//
// The returned error joins one entry per violation (errors.Join), each
// naming the offending option and listing the supported values.
func CheckOptions(caps Caps, o Options) error {
	var errs []error
	if o.Trace != nil && !caps.Trace {
		errs = append(errs, errors.New("Trace: backend does not support tracing"))
	}
	if o.Chaos != nil && !caps.Chaos {
		errs = append(errs, errors.New("Chaos: backend does not support chaos injection"))
	}
	if o.Watchdog > 0 && !caps.Watchdog {
		errs = append(errs, errors.New("Watchdog: backend does not support stuck-run detection"))
	}
	if o.PrivateTasks && !caps.PrivateTasks {
		errs = append(errs, errors.New("PrivateTasks: backend does not implement the private-task optimization"))
	}
	if p := o.Steal.Policy; p != "" && !containsName(caps.StealPolicies, p) {
		if len(caps.StealPolicies) == 0 {
			errs = append(errs, fmt.Errorf("Steal.Policy %q: backend has no policy-driven victim selection", p))
		} else {
			errs = append(errs, fmt.Errorf("Steal.Policy %q: backend supports %s", p, strings.Join(caps.StealPolicies, ", ")))
		}
	}
	if a := o.Steal.Amount; a != "" && !containsName(caps.StealAmounts, a) {
		if len(caps.StealAmounts) == 0 {
			errs = append(errs, fmt.Errorf("Steal.Amount %q: backend has no configurable steal amount", a))
		} else {
			errs = append(errs, fmt.Errorf("Steal.Amount %q: backend supports %s", a, strings.Join(caps.StealAmounts, ", ")))
		}
	}
	return errors.Join(errs...)
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
