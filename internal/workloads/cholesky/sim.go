package cholesky

import (
	"gowool/internal/sim"
)

// Simulated factorization: the identical task structure as the wool
// version, executed on the virtual-time machine. The dense kernels run
// for real (so results stay verifiable) and charge their calibrated
// cycle costs; everything above them is simulated scheduling.

// SimSched bundles the simulated task definitions.
type SimSched struct {
	backsub *sim.Def
	mulsub  *sim.Def
}

// NewSim builds the simulated task definitions.
func NewSim() *SimSched {
	s := &SimSched{}
	s.backsub = &sim.Def{Name: "chol-backsub"}
	s.backsub.F = func(w *sim.W, a sim.Args) int64 {
		return int64(s.backsubStep(w, a.Ctx.(*Arena), int32(a.A0), int32(a.A1), a.A2))
	}
	s.mulsub = &sim.Def{Name: "chol-mulsub"}
	s.mulsub.F = func(w *sim.W, a sim.Args) int64 {
		ar := a.Ctx.(*Arena)
		r, size, lower := unpackMeta(a.A0)
		a1, b1 := unpack2(a.A1)
		a2, b2 := unpack2(a.A2)
		r = s.mulsubStep(w, ar, r, a1, b1, size, lower)
		r = s.mulsubStep(w, ar, r, a2, b2, size, lower)
		return int64(r)
	}
	return s
}

// RootDef returns a task definition that factors the Ctx matrix — the
// entry point handed to sim.Run.
func (s *SimSched) RootDef() *sim.Def {
	d := &sim.Def{Name: "cholesky"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		m := a.Ctx.(*Matrix)
		m.Root = s.chol(w, m.Ar, m.Root, m.Ar.Size)
		return int64(m.Ar.NodesInUse())
	}
	return d
}

// RepsDef returns a definition running A0 serialized factorizations of
// freshly generated matrices (n = A1, nonzeros = A2, seed = A3) — the
// repeated-kernel structure of the paper's measurements. Generation
// happens at zero virtual cost between repetitions, like a benchmark
// harness resetting state outside the timed kernel, so RepSz matches
// the factorization work alone.
func (s *SimSched) RepsDef() *sim.Def {
	d := &sim.Def{Name: "cholesky-reps"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		var total int64
		for r := int64(0); r < a.A0; r++ {
			m := Generate(a.A1, a.A2, uint64(a.A3)+uint64(r)*977)
			m.Root = s.chol(w, m.Ar, m.Root, m.Ar.Size)
			total += m.Ar.NodesInUse()
		}
		return total
	}
	return d
}

func (s *SimSched) chol(w *sim.W, ar *Arena, a int32, size int64) int32 {
	if a == 0 {
		panic("cholesky: zero diagonal block (matrix is singular)")
	}
	if size == Block {
		blockCholesky(ar.Tile(a))
		w.Work(CholeskyKernelCycles)
		return a
	}
	n := ar.Node(a)
	half := size / 2
	n.Child[q00] = s.chol(w, ar, n.Child[q00], half)
	n.Child[q10] = int32(s.backsub.Call(w, sim.Args{A0: int64(n.Child[q10]), A1: int64(n.Child[q00]), A2: half, Ctx: ar}))
	n.Child[q11] = s.mulsubStep(w, ar, n.Child[q11], n.Child[q10], n.Child[q10], half, true)
	n.Child[q11] = s.chol(w, ar, n.Child[q11], half)
	return a
}

func (s *SimSched) backsubStep(w *sim.W, ar *Arena, a, l int32, size int64) int32 {
	if a == 0 {
		return 0
	}
	if size == Block {
		blockBacksub(ar.Tile(a), ar.Tile(l))
		w.Work(BacksubKernelCycles)
		return a
	}
	na, nl := ar.Node(a), ar.Node(l)
	half := size / 2
	l00, l10, l11 := nl.Child[q00], nl.Child[q10], nl.Child[q11]

	s.backsub.Spawn(w, sim.Args{A0: int64(na.Child[q00]), A1: int64(l00), A2: half, Ctx: ar})
	x10 := int32(s.backsub.Call(w, sim.Args{A0: int64(na.Child[q10]), A1: int64(l00), A2: half, Ctx: ar}))
	x00 := int32(w.Join())
	na.Child[q00], na.Child[q10] = x00, x10

	s.mulsub.Spawn(w, sim.Args{A0: packMeta(na.Child[q01], half, false), A1: pack2(x00, l10), Ctx: ar})
	r11 := int32(s.mulsub.Call(w, sim.Args{A0: packMeta(na.Child[q11], half, false), A1: pack2(x10, l10), Ctx: ar}))
	r01 := int32(w.Join())

	s.backsub.Spawn(w, sim.Args{A0: int64(r01), A1: int64(l11), A2: half, Ctx: ar})
	x11 := int32(s.backsub.Call(w, sim.Args{A0: int64(r11), A1: int64(l11), A2: half, Ctx: ar}))
	x01 := int32(w.Join())
	na.Child[q01], na.Child[q11] = x01, x11
	return a
}

func (s *SimSched) mulsubStep(w *sim.W, ar *Arena, r, a, b int32, size int64, lower bool) int32 {
	if a == 0 || b == 0 {
		return r
	}
	if size == Block {
		if r == 0 {
			r = ar.NewLeaf()
		}
		blockMulSub(ar.Tile(r), ar.Tile(a), ar.Tile(b), lower)
		if lower {
			w.Work(MulSubKernelCycles / 2)
		} else {
			w.Work(MulSubKernelCycles)
		}
		return r
	}
	if r == 0 {
		r = ar.NewNode()
	}
	nr, na, nb := ar.Node(r), ar.Node(a), ar.Node(b)
	half := size / 2

	s.mulsub.Spawn(w, sim.Args{A0: packMeta(nr.Child[q00], half, lower),
		A1: pack2(na.Child[q00], nb.Child[q00]), A2: pack2(na.Child[q01], nb.Child[q01]), Ctx: ar})
	if !lower {
		s.mulsub.Spawn(w, sim.Args{A0: packMeta(nr.Child[q01], half, false),
			A1: pack2(na.Child[q00], nb.Child[q10]), A2: pack2(na.Child[q01], nb.Child[q11]), Ctx: ar})
	}
	s.mulsub.Spawn(w, sim.Args{A0: packMeta(nr.Child[q10], half, false),
		A1: pack2(na.Child[q10], nb.Child[q00]), A2: pack2(na.Child[q11], nb.Child[q01]), Ctx: ar})
	r11 := int32(s.mulsub.Call(w, sim.Args{A0: packMeta(nr.Child[q11], half, lower),
		A1: pack2(na.Child[q10], nb.Child[q10]), A2: pack2(na.Child[q11], nb.Child[q11]), Ctx: ar}))

	r10 := int32(w.Join())
	r01 := nr.Child[q01]
	if !lower {
		r01 = int32(w.Join())
	}
	r00 := int32(w.Join())
	nr.Child[q00], nr.Child[q01], nr.Child[q10], nr.Child[q11] = r00, r01, r10, r11
	return r
}
