// Package workloads_test cross-validates every workload on every
// registered scheduler through the internal/sched registry: each
// workload body is written once as a Job and must compute results
// identical to the serial reference on every backend, under
// concurrency. (The per-scheduler cholesky instantiations are checked
// in internal/sched's conformance suite, where the concrete scheduler
// packages are in scope.)
package workloads_test

import (
	"math"
	"runtime"
	"testing"

	"gowool/internal/sched"
	"gowool/internal/workloads/mm"
	"gowool/internal/workloads/ssf"
	"gowool/internal/workloads/stress"
)

func TestMMAllSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 48
	want := func() []float64 {
		m := mm.New(n)
		mm.Serial(m)
		return m.C
	}()

	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			m := mm.New(n)
			p := s.NewPool(sched.Options{Workers: 3})
			defer p.Close()
			if rows := p.RunRange(mm.Job(m, 1)); rows != n {
				t.Fatalf("rows computed = %d, want %d", rows, n)
			}
			for i := range m.C {
				if math.Abs(m.C[i]-want[i]) > 1e-9 {
					t.Fatalf("C[%d] = %g, want %g", i, m.C[i], want[i])
				}
			}
		})
	}
}

func TestSSFAllSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	s := ssf.FibString(11)
	want := ssf.Serial(s, nil)
	serialOut := make([]int64, len(s))
	ssf.Serial(s, serialOut)

	for _, sc := range sched.All() {
		t.Run(sc.Name(), func(t *testing.T) {
			wk := &ssf.Work{S: s, Out: make([]int64, len(s))}
			p := sc.NewPool(sched.Options{Workers: 3})
			defer p.Close()
			if got := p.RunRange(ssf.Job(wk, 1)); got != want {
				t.Fatalf("checksum = %d, want %d", got, want)
			}
			for i := range serialOut {
				if wk.Out[i] != serialOut[i] {
					t.Fatalf("out[%d] = %d, want %d", i, wk.Out[i], serialOut[i])
				}
			}
		})
	}
}

func TestStressAllSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const height, iters, reps = 6, 64, 5
	want := stress.SerialReps(height, iters, reps)

	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			p := s.NewPool(sched.Options{Workers: 3})
			defer p.Close()
			if got := p.RunRec(stress.Job(height, iters, reps)); got != want {
				t.Fatalf("leaves = %d, want %d", got, want)
			}
		})
	}
}
