// Command woolbench regenerates the tables and figures of the paper's
// evaluation (Faxén, "Efficient Work Stealing for Fine Grained
// Parallelism", ICPP 2010).
//
// Usage:
//
//	woolbench [-scale quick|full] [experiment ...]
//	woolbench -list
//	woolbench -corejson BENCH_core.json
//	woolbench -registryjson BENCH_registry.json
//	woolbench -perfgate BENCH_registry.json
//	woolbench [-scale quick|full] -stealsweep BENCH_steal.json
//
// With no experiment arguments every experiment runs in order. The
// multi-processor experiments run on the deterministic virtual-time
// simulator (see DESIGN.md for the substitution rationale);
// single-processor overhead ladders additionally run natively.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gowool/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "input scale: quick or full")
	list := flag.Bool("list", false, "list experiments and exit")
	coreJSON := flag.String("corejson", "", "run the native core fast-path/idle-engine benchmarks and write machine-readable results to FILE")
	benchTrace := flag.String("trace", "", "with -corejson: record one extra untimed fib repetition on a traced pool and write the Chrome trace to FILE")
	registryJSON := flag.String("registryjson", "", "run the registry benchmarks (generic vs generated ladder, steal latency, fib(28) per backend) and write machine-readable results to FILE")
	perfgate := flag.String("perfgate", "", "re-measure the gated benchmark keys and fail on regression against the committed baseline FILE")
	stealsweep := flag.String("stealsweep", "", "run the steal-policy sweep (policy × amount × backend × workload natively, plus the sharded-topology simulator grid) and write machine-readable results to FILE; honours -scale")
	serveBench := flag.String("serve", "", "run the woolserve request-serving benchmark (throughput and latency percentiles per backend, with a mid-flight-cancellation mix) and write machine-readable results to FILE; honours -scale")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: woolbench [-scale quick|full] [experiment ...]\n\nexperiments:\n")
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	if *coreJSON != "" {
		if err := runCoreBench(*coreJSON, *benchTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *registryJSON != "" {
		if err := runRegistryBench(*registryJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *perfgate != "" {
		if err := runPerfGate(*perfgate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *stealsweep != "" {
		if err := runStealSweep(*stealsweep, scale == experiments.Full); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *serveBench != "" {
		if err := runServeBench(*serveBench, scale == experiments.Full); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("### %s (%s) — %s [scale=%s]\n\n", e.ID, e.Paper, e.Title, *scaleFlag)
		t0 := time.Now()
		if err := e.Run(scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
