package sim

import (
	"testing"

	"gowool/internal/costmodel"
	"gowool/internal/steal"
)

// TestStealPolicyAllKindsCorrect: every victim policy computes the
// right answer under every protocol kind, deterministically.
func TestStealPolicyAllKindsCorrect(t *testing.T) {
	fib := simFib()
	want := serialFib(15)
	kinds := []struct {
		kind  Kind
		costs costmodel.Profile
	}{
		{KindDirectStack, costmodel.Wool()},
		{KindDeque, costmodel.TBB()},
		{KindLock, costmodel.LockBase()},
		{KindCentral, costmodel.OpenMP()},
	}
	for _, k := range kinds {
		for _, pol := range steal.Policies() {
			cfg := Config{
				Procs: 8, Kind: k.kind, Costs: k.costs,
				Steal: steal.Config{Policy: pol, Neighborhood: 2},
			}
			a := Run(cfg, fib, Args{A0: 15})
			if a.Value != want {
				t.Errorf("%v/%s: got %d want %d", k.kind, pol, a.Value, want)
			}
			b := Run(cfg, fib, Args{A0: 15})
			if a.Makespan != b.Makespan || a.Total.Steals != b.Total.Steals {
				t.Errorf("%v/%s: replay diverged", k.kind, pol)
			}
		}
	}
}

// TestDefaultStealConfigBitIdentical: the policy refactor must not
// move a single cycle on default configs — the zero-value Steal config
// reproduces the pre-policy RNG streams exactly, so a run with an
// explicitly spelled-out random policy equals the legacy default.
func TestDefaultStealConfigBitIdentical(t *testing.T) {
	tree := simTree(512)
	base := Config{Procs: 8, Kind: KindDirectStack, Costs: costmodel.Wool(), Seed: 7}
	expl := base
	expl.Steal = steal.Config{Policy: steal.Random}
	a := Run(base, tree, Args{A0: 10})
	b := Run(expl, tree, Args{A0: 10})
	if a.Makespan != b.Makespan || a.Total.Attempts != b.Total.Attempts {
		t.Fatalf("explicit random diverged from default: makespan %d vs %d, attempts %d vs %d",
			a.Makespan, b.Makespan, a.Total.Attempts, b.Total.Attempts)
	}
}

// TestStealMatrixAccountsAllSteals: the per-thief victim rows sum to
// the machine's steal counter (non-central kinds: every steal claims
// from a victim).
func TestStealMatrixAccountsAllSteals(t *testing.T) {
	tree := simTree(512)
	res := Run(Config{Procs: 8, Kind: KindDirectStack, Costs: costmodel.Wool()}, tree, Args{A0: 10})
	var sum int64
	for i, row := range res.StealsFrom {
		for v, n := range row {
			if v == i && n != 0 {
				t.Errorf("worker %d recorded %d steals from itself", i, n)
			}
			sum += n
		}
	}
	if sum != res.Total.Steals {
		t.Fatalf("matrix sums to %d, Steals counter %d", sum, res.Total.Steals)
	}
	if sum == 0 {
		t.Fatal("no steals at 8 procs on a fine-grain tree")
	}
}

// meanHops is the steal-count-weighted mean shard distance of a run.
func meanHops(res Result, topo Topology, procs int) float64 {
	var total, weighted int64
	for i, row := range res.StealsFrom {
		for v, n := range row {
			total += n
			weighted += n * int64(topo.hops(i, v, procs))
		}
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// TestTopologyPenaltiesSlowStealHeavyRuns: a sharded machine with
// per-hop penalties can only add cycles, and on a steal-heavy
// fine-grain workload it must add some.
func TestTopologyPenaltiesSlowStealHeavyRuns(t *testing.T) {
	tree := simTree(512)
	const procs = 16
	flat := Run(Config{Procs: procs, Kind: KindDirectStack, Costs: costmodel.Wool()},
		tree, Args{A0: 11})
	sharded := Run(Config{
		Procs: procs, Kind: KindDirectStack, Costs: costmodel.Wool(),
		Topology: Topology{Shards: 4},
	}, tree, Args{A0: 11})
	if sharded.Makespan <= flat.Makespan {
		t.Errorf("sharded makespan %d not above flat %d", sharded.Makespan, flat.Makespan)
	}
}

// TestLocalizedStaysLocalOnShardedMachine: under the sharded topology
// the localized policy's steal matrix concentrates near the diagonal —
// its mean shard distance is well below uniform-random's.
func TestLocalizedStaysLocalOnShardedMachine(t *testing.T) {
	tree := simTree(512)
	const procs = 32
	topo := Topology{Shards: 8}
	run := func(pol string) Result {
		return Run(Config{
			Procs: procs, Kind: KindDirectStack, Costs: costmodel.Wool(),
			Steal:    steal.Config{Policy: pol},
			Topology: topo,
		}, tree, Args{A0: 12})
	}
	random, localized := run(steal.Random), run(steal.Localized)
	hr, hl := meanHops(random, topo, procs), meanHops(localized, topo, procs)
	if hl >= hr/2 {
		t.Errorf("localized mean hops %.3f not well below random's %.3f", hl, hr)
	}
}

// TestTopologyHops pins the shard map and distance arithmetic.
func TestTopologyHops(t *testing.T) {
	topo := Topology{Shards: 4}
	cases := []struct {
		a, b int
		want uint64
	}{
		{0, 3, 0},  // same shard (workers 0-3 in shard 0)
		{0, 4, 1},  // adjacent shards
		{0, 15, 3}, // far corners of a 16-worker machine
		{15, 0, 3}, // symmetric
		{8, 11, 0}, // interior shard
		{7, 8, 1},  // shard boundary
	}
	for _, c := range cases {
		if got := topo.hops(c.a, c.b, 16); got != c.want {
			t.Errorf("hops(%d,%d,16) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if flat := (Topology{}); flat.hops(0, 15, 16) != 0 {
		t.Error("flat machine has nonzero hops")
	}
}
