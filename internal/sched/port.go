package sched

// The generic task-port layer: Go generics over the per-scheduler
// Define-style constructors, so a job body is written once and
// instantiated for any backend whose task definitions have the
// SPAWN/CALL/JOIN shape. A builder takes the backend's Define function
// (core.Define1, chaselev.Define1, locksched.Define1, ...); type
// inference resolves the worker and definition types from it, and the
// constraint checks that the resulting definition supports the idiom.

// Task1 is a task definition over one int64 argument for worker type
// W (the shape of core.TaskDef1, chaselev.TaskDef1, ...).
type Task1[W any] interface {
	Spawn(W, int64)
	Call(W, int64) int64
	Join(W) int64
}

// Task2 is a task definition over two int64 arguments.
type Task2[W any] interface {
	Spawn(W, int64, int64)
	Call(W, int64, int64) int64
	Join(W) int64
}

// TaskC2 is a task definition over a typed context pointer and two
// int64 arguments.
type TaskC2[W, C any] interface {
	Spawn(W, *C, int64, int64)
	Call(W, *C, int64, int64) int64
	Join(W) int64
}

// TaskC3 is a task definition over a typed context pointer and three
// int64 arguments (the shape cholesky needs).
type TaskC3[W, C any] interface {
	Spawn(W, *C, int64, int64, int64)
	Call(W, *C, int64, int64, int64) int64
	Join(W) int64
}

// BuildRec instantiates a RecJob for any scheduler exposing a
// Define1-style constructor: spawn the second subproblem, call the
// first inline, join, sum (paper Figure 2).
func BuildRec[W any, D Task1[W]](define func(string, func(W, int64) int64) D, j RecJob) D {
	var d D
	d = define(j.Name, func(w W, n int64) int64 {
		if v, ok := j.Leaf(n); ok {
			return v
		}
		first, second := j.Split(n)
		d.Spawn(w, second)
		a := d.Call(w, first)
		b := d.Join(w)
		return a + b
	})
	return d
}

// BuildRange instantiates a RangeJob's balanced range splitter for any
// scheduler exposing a Define2-style constructor — the task tree
// Wool's loop constructs expand into, splitting [lo, hi) at the
// midpoint until single indices.
func BuildRange[W any, D Task2[W]](define func(string, func(W, int64, int64) int64) D, j RangeJob) D {
	var d D
	d = define(j.Name, func(w W, lo, hi int64) int64 {
		if hi-lo <= 1 {
			if hi <= lo {
				return 0
			}
			return j.Leaf(lo)
		}
		mid := (lo + hi) / 2
		d.Spawn(w, mid, hi)
		a := d.Call(w, lo, mid)
		b := d.Join(w)
		return a + b
	})
	return d
}
