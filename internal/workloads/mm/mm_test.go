package mm

import (
	"math"
	"runtime"
	"testing"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sched"
	"gowool/internal/sim"
)

func referenceMultiply(m *Matrices) []float64 {
	n := m.N
	out := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			var s float64
			for k := int64(0); k < n; k++ {
				s += m.A[i*n+k] * m.B[k*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSerial(t *testing.T) {
	m := New(33)
	Serial(m)
	if d := maxDiff(m.C, referenceMultiply(m)); d > 1e-9 {
		t.Errorf("serial multiply differs from reference by %g", d)
	}
}

func TestWoolMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	m := New(64)
	want := referenceMultiply(m)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true})
	defer p.Close()
	rows := NewWool()
	if got := RunWool(p, rows, m); got != 64 {
		t.Fatalf("rows computed = %d, want 64", got)
	}
	if d := maxDiff(m.C, want); d > 1e-9 {
		t.Errorf("wool multiply differs by %g", d)
	}
}

func TestOMPMatchesSerial(t *testing.T) {
	// The OpenMP adapter runs Job as a static work-sharing loop; check
	// that path writes the same C as the serial reference.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	m := New(50)
	want := referenceMultiply(m)
	omp, ok := sched.Lookup("omp")
	if !ok {
		t.Fatal("omp not registered")
	}
	p := omp.NewPool(sched.Options{Workers: 4})
	defer p.Close()
	if got := p.RunRange(Job(m, 1)); got != 50 {
		t.Fatalf("rows computed = %d, want 50", got)
	}
	if d := maxDiff(m.C, want); d > 1e-9 {
		t.Errorf("omp multiply differs by %g", d)
	}
}

func TestResetAndRepeat(t *testing.T) {
	m := New(20)
	Serial(m)
	first := append([]float64(nil), m.C...)
	m.Reset()
	for _, v := range m.C {
		if v != 0 {
			t.Fatal("Reset left nonzero C")
		}
	}
	Serial(m)
	if d := maxDiff(m.C, first); d != 0 {
		t.Errorf("repeat differs by %g", d)
	}
}

func TestSimWorkMatchesPaperRepSz(t *testing.T) {
	// Paper Table I: mm with 64 rows has RepSz ≈ 976k cycles. Our
	// model (4·n² per row) gives 64·4·64² ≈ 1.05M — same ballpark.
	res := sim.Run(sim.Config{Procs: 1, Kind: sim.KindDirectStack, Costs: costmodel.Wool(),
		TrackSpan: true}, NewSim(), sim.Args{A0: 0, A1: 64, A2: 64})
	if res.Value != 64 {
		t.Fatalf("rows = %d", res.Value)
	}
	if res.Work < 900_000 || res.Work > 1_200_000 {
		t.Errorf("RepSz model = %d cycles, want ≈ 976k–1.05M", res.Work)
	}
	// 63 tasks for 64 rows (paper Section IV-D2a: "63 tasks are
	// spawned each of which will do one iteration of the outer loop").
	if res.Total.Spawns != 63 {
		t.Errorf("spawns = %d, want 63", res.Total.Spawns)
	}
}

func TestSimRepsValue(t *testing.T) {
	res := sim.Run(sim.Config{Procs: 4, Kind: sim.KindDirectStack, Costs: costmodel.Wool()},
		NewSimReps(), sim.Args{A0: 16, A1: 10})
	if res.Value != 160 {
		t.Errorf("rows over reps = %d, want 160", res.Value)
	}
}
