// Package experiments regenerates every table and figure of the
// paper's evaluation (Section IV). Each experiment renders the same
// rows/series the paper reports; EXPERIMENTS.md records the measured
// values next to the paper's. Multi-processor results come from the
// virtual-time simulator (internal/sim) standing in for the paper's
// 8-core Opteron; single-processor overhead measurements (Table II and
// the inlined column of Table III) additionally run natively.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"gowool/internal/costmodel"
	"gowool/internal/sim"
)

// Scale selects the input sizes: Quick finishes in tens of seconds for
// tests and `go test -bench`; Full is the paper-shape reproduction run
// by cmd/woolbench (minutes).
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("unknown scale %q (want quick or full)", s)
	}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string // harness id: "table1".."table4", "fig1", "fig4".."fig6"
	Paper string // the artifact in the paper
	Title string
	Run   func(sc Scale, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// All returns the experiments in presentation order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// System is one of the four schedulers the paper compares, mapped to a
// simulator protocol and cost profile.
type System struct {
	Name    string
	Kind    sim.Kind
	Strat   sim.LockStrategy
	Costs   costmodel.Profile
	Private bool
}

// Systems returns the paper's four systems in its presentation order:
// Wool (direct task stack + private tasks), Cilk++ (lock-based
// steal costs), TBB (deque), OpenMP (central pool).
func Systems() []System {
	return []System{
		{Name: "Wool", Kind: sim.KindDirectStack, Costs: costmodel.Wool(), Private: true},
		{Name: "Cilk++", Kind: sim.KindLock, Strat: sim.LockBase, Costs: costmodel.CilkPP()},
		{Name: "TBB", Kind: sim.KindDeque, Costs: costmodel.TBB()},
		{Name: "OpenMP", Kind: sim.KindCentral, Costs: costmodel.OpenMP()},
	}
}

// run executes root(args) for system s at p processors. The Wool
// private-task parameters are a bit more generous than the library
// defaults: a balanced tree needs about one public descriptor per
// level to feed the machine promptly (Section III-B: "if the task tree
// is balanced, fewer public task descriptors suffice... very
// unbalanced trees require more"), and an owner deep in a coarse leaf
// cannot answer the trip wire until its next task operation.
func (s System) run(p int, root *sim.Def, args sim.Args) sim.Result {
	c := sim.Config{
		Procs:         p,
		Kind:          s.Kind,
		LockStrategy:  s.Strat,
		Costs:         s.Costs,
		PrivateTasks:  s.Private,
		InitialPublic: 4,
		TripDistance:  2,
		PublishAmount: 4,
		Seed:          0x5eed + uint64(p)*977,
	}
	return sim.Run(c, root, args)
}

// serialWork measures T_S: the pure application work of root(args) in
// cycles, from a single-processor run under a zero-overhead profile
// with span tracking (Work counts only Work() charges).
func serialWork(root *sim.Def, args sim.Args) sim.Result {
	return sim.Run(sim.Config{
		Procs: 1, Kind: sim.KindDirectStack,
		Costs:     costmodel.Profile{Name: "zero"},
		TrackSpan: true, SpanOverhead: 2000,
	}, root, args)
}

// procsFor returns the processor counts plotted at this scale.
func procsFor(sc Scale) []int {
	if sc == Quick {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

func floatProcs(ps []int) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = float64(p)
	}
	return out
}
