package resilience

import (
	"sync"
	"time"
)

// EstimatorConfig tunes the per-(tenant, job class) service-time
// estimator behind deadline-aware admission.
type EstimatorConfig struct {
	// Alpha is the EWMA smoothing factor applied to each new
	// observation (estimate += alpha * (sample - estimate)).
	// Default 0.2.
	Alpha float64
	// MinSamples is how many observations a class needs before its
	// estimate is trusted for admission decisions — an unknown class
	// is always admitted. Default 8.
	MinSamples int
	// Margin scales the estimate in the unmeetable test: a submission
	// is shed when remaining < Margin × estimate. 1.0 sheds exactly at
	// the estimate; larger values shed earlier (safety margin for
	// queueing ahead of the request). Default 1.0.
	Margin float64
}

// Defaulted fills zero fields with the defaults.
func (c EstimatorConfig) Defaulted() EstimatorConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.Margin <= 0 {
		c.Margin = 1.0
	}
	return c
}

// Estimator tracks an EWMA of observed service times per job class
// (the job's declared name) for one tenant. Safe for concurrent use.
type Estimator struct {
	mu      sync.Mutex
	cfg     EstimatorConfig
	classes map[string]*classEstimate
}

type classEstimate struct {
	ewmaNs  float64
	samples int
}

// NewEstimator builds an estimator with cfg (zero fields defaulted).
func NewEstimator(cfg EstimatorConfig) *Estimator {
	return &Estimator{cfg: cfg.Defaulted(), classes: map[string]*classEstimate{}}
}

// Observe feeds one completed request's service time for class.
func (e *Estimator) Observe(class string, d time.Duration) {
	if d < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ce := e.classes[class]
	if ce == nil {
		ce = &classEstimate{}
		e.classes[class] = ce
	}
	ce.samples++
	if ce.samples == 1 {
		ce.ewmaNs = float64(d)
		return
	}
	ce.ewmaNs += e.cfg.Alpha * (float64(d) - ce.ewmaNs)
}

// Estimate returns the class's current service-time estimate and
// whether it has enough samples to be trusted.
func (e *Estimator) Estimate(class string) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ce := e.classes[class]
	if ce == nil || ce.samples < e.cfg.MinSamples {
		return 0, false
	}
	return time.Duration(ce.ewmaNs), true
}

// Unmeetable reports whether a request of class with the given
// remaining deadline budget is doomed: the estimate is trusted and
// remaining < Margin × estimate. Classes without a trusted estimate
// are never unmeetable (admit and learn).
func (e *Estimator) Unmeetable(class string, remaining time.Duration) bool {
	est, ok := e.Estimate(class)
	if !ok {
		return false
	}
	return float64(remaining) < e.cfg.Margin*float64(est)
}
