package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format's
// traceEvents array (the subset we emit: metadata, instants, and
// begin/end span pairs). Timestamps are microseconds, as the format
// requires; sub-microsecond precision is kept in the fraction.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         uint64        `json:"droppedEvents"`
}

// WriteChromeTrace exports the tracer's current contents in Chrome's
// trace_event JSON format: one lane (tid) per worker, instant events
// for the protocol vocabulary, and Begin/End slices for stolen-task
// execution spans. Load the file in chrome://tracing or Perfetto.
// Call it on a quiescent tracer for an exact export (see Snapshot).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ns", Dropped: t.Dropped()}
	for i := range t.rings {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   i,
			Args:  map[string]any{"name": fmt.Sprintf("worker %d", i)},
		})
	}
	for _, events := range t.Snapshot() {
		for _, e := range events {
			ce := chromeEvent{
				Name: e.Kind.String(),
				TID:  int(e.Worker),
				TS:   float64(e.TS) / 1e3,
			}
			switch e.Kind {
			case KindTaskStart:
				ce.Phase = "B"
				ce.Name = "stolen task"
				ce.Args = map[string]any{"victim": e.Arg, "depth": e.Arg2}
			case KindTaskEnd:
				ce.Phase = "E"
				ce.Name = "stolen task"
			default:
				ce.Phase = "i"
				ce.Scope = "t"
				switch e.Kind {
				case KindSteal, KindLeapfrog:
					ce.Args = map[string]any{"victim": e.Arg, "depth": e.Arg2}
				case KindSpawn:
					ce.Args = map[string]any{"depth": e.Arg}
				case KindPublish:
					ce.Args = map[string]any{"oldLimit": e.Arg, "newLimit": e.Arg2}
				case KindPrivatize:
					ce.Args = map[string]any{"newLimit": e.Arg}
				case KindWake:
					ce.Args = map[string]any{"woke": e.Arg}
				}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Validate checks that r holds a structurally valid wooltrace Chrome
// export: a traceEvents array whose entries carry the required
// name/ph/pid/tid/ts fields, phases limited to M/i/B/E, and every
// non-metadata event name drawn from the wooltrace vocabulary. It
// returns the number of non-metadata events on success. This is the
// schema check behind `make trace-smoke` (woolrun -checktrace).
func Validate(r io.Reader) (int, error) {
	var raw struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if raw.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	n := 0
	for i, e := range raw.TraceEvents {
		name, ok := e["name"].(string)
		if !ok {
			return 0, fmt.Errorf("trace: event %d: missing name", i)
		}
		ph, ok := e["ph"].(string)
		if !ok {
			return 0, fmt.Errorf("trace: event %d (%s): missing ph", i, name)
		}
		switch ph {
		case "M":
			continue // metadata; no ts required
		case "i", "B", "E":
		default:
			return 0, fmt.Errorf("trace: event %d (%s): unexpected phase %q", i, name, ph)
		}
		for _, field := range []string{"pid", "tid", "ts"} {
			if _, ok := e[field].(float64); !ok {
				return 0, fmt.Errorf("trace: event %d (%s): missing numeric %s", i, name, field)
			}
		}
		if name != "stolen task" {
			if _, ok := KindFromString(name); !ok {
				return 0, fmt.Errorf("trace: event %d: name %q is not in the wooltrace vocabulary", i, name)
			}
		}
		n++
	}
	return n, nil
}
