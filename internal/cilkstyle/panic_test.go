package cilkstyle

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStolenContinuationPanicPropagates covers the steal-parent abort
// path: the panic is planted in the parent's continuation — exactly
// the piece a thief takes in this backend — and the child spins until
// someone starts it, which biases the schedule toward the steal. The
// thief's recover poisons the pool (its goroutine must survive for
// Close), Run's wait loop breaks out of its rootDone wait (the
// abandoned frame's pending count will never reach the root), Run
// re-raises the original value, and later Runs fail fast with the
// poisoned message.
func TestStolenContinuationPanicPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for attempt := 0; attempt < 30; attempt++ {
		p := NewPool(Options{Workers: 2, MaxIdleSleep: -1})
		var started atomic.Bool
		var contWorker atomic.Int32
		root := &Frame{}
		child := &Frame{}
		NewChild(root, child)
		childStep := func(w *Worker) Step {
			// Give the idle worker time to take the parent continuation
			// sitting in worker 0's deque before this child returns and
			// worker 0 pops it back itself.
			deadline := time.Now().Add(5 * time.Millisecond)
			for !started.Load() && time.Now().Before(deadline) {
				runtime.Gosched()
			}
			return w.Return(child)
		}
		cont := func(w *Worker) Step {
			started.Store(true)
			contWorker.Store(int32(w.idx))
			panic("boom")
		}
		first := func(w *Worker) Step {
			return w.Spawn(root, cont, childStep)
		}
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("panic did not propagate from Run")
				} else if r != "boom" {
					t.Fatalf("wrong panic value %v", r)
				}
			}()
			p.Run(root, first)
		}()
		stolen := contWorker.Load() != 0
		if stolen {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("poisoned pool accepted another Run")
					}
					if msg := fmt.Sprint(r); !strings.Contains(msg, "pool poisoned by earlier task panic") {
						t.Fatalf("poisoned Run panicked with %v", r)
					}
				}()
				p.Run(&Frame{}, func(w *Worker) Step { return nil })
			}()
		}
		closed := make(chan struct{})
		go func() {
			p.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(10 * time.Second):
			t.Fatal("Close hung after a stolen-continuation panic")
		}
		if stolen {
			return // the thief-side abort path ran; done
		}
	}
	t.Log("continuation was never stolen in 30 attempts; inline panic path exercised instead")
}
